"""L3OPT — reduce GPU cache-line contention (paper section 4.2).

The integrated GPU's L3 is shared by all cores and is *not banked*: when
several cores touch the same cache line in the same cycle, accesses
serialize.  A common irregular-kernel shape makes this worst-case: an
innermost loop that walks the *same* array in the *same* order on every
work-item (e.g. "for each node, scan all N candidates").  Every core is at
the same ``j`` at roughly the same time, hammering one line.

The paper's fix is a compile-time iteration-order stagger per Figure 5:

    int start = i / W;               // W = number of GPU cores
    for (j = 0; j < N; j++) {
        j_tmp = (j + start) % N;
        ... = a[j_tmp];
    }

We implement it as an IR loop transformation.  A candidate loop must be:

* an innermost natural loop with a canonical induction variable:
  phi ``j`` starting at 0, stepped by +1, exiting on ``j < N`` /
  ``j != N`` with loop-invariant ``N``;
* memory access order must be permutable: every other header phi is a
  commutative reduction (add/fadd/mul/fmul/and/or/xor/min/max via select),
  and the loop body writes no shared memory (loads only);
* the loop must contain at least one *work-item-uniform* address: a load
  whose address does not depend on the work-item id.  (If every lane reads
  different data there is no same-line contention to fix.)

The rewrite inserts ``start = global_id / W`` in the preheader and replaces
body uses of ``j`` with ``(j + start) % N``, leaving the increment and the
exit test on the original ``j``.
"""

from __future__ import annotations

from typing import Optional

from ..ir import (
    Constant,
    DominatorTree,
    Function,
    Instruction,
    IRBuilder,
    find_loops,
)
from ..ir.intrinsics import GPU_GLOBAL_ID, GPU_NUM_CORES
from ..ir.types import IntType


def reduce_cacheline_contention(function: Function) -> bool:
    if not function.blocks:
        return False
    changed = False
    domtree = DominatorTree(function)
    for loop in find_loops(function, domtree):
        if not loop.is_innermost() or len(loop.latches) != 1:
            continue
        candidate = _match_candidate(function, loop)
        if candidate is None:
            continue
        _apply_stagger(function, loop, candidate)
        changed = True
    return changed


class _Candidate:
    def __init__(self, iv: Instruction, step: Instruction, bound, preheader):
        self.iv = iv
        self.step = step
        self.bound = bound
        self.preheader = preheader


def _match_candidate(function: Function, loop) -> Optional[_Candidate]:
    header = loop.header
    latch = loop.latches[0]
    preds = function.compute_preds()
    outside_preds = [p for p in preds[header] if p not in loop.blocks]
    if len(outside_preds) != 1:
        return None
    preheader = outside_preds[0]

    iv = step = None
    for phi in header.phis():
        init, stepval = _phi_init_step(phi, preheader, latch)
        if init is None:
            continue
        if (
            isinstance(init, Constant)
            and init.value == 0
            and isinstance(stepval, Instruction)
            and stepval.op == "add"
            and _is_plus_one(stepval, phi)
        ):
            iv, step = phi, stepval
            break
    if iv is None:
        return None

    # All other header phis must be commutative reductions.
    for phi in header.phis():
        if phi is iv:
            continue
        if not _is_reduction_phi(phi, preheader, latch, loop):
            return None

    bound = _loop_bound(function, loop, iv, step)
    if bound is None:
        return None

    if not _body_is_permutable(function, loop, iv, step):
        return None
    if _has_escaping_values(function, loop, iv, step):
        return None
    if not _has_uniform_access(function, loop):
        return None
    return _Candidate(iv, step, bound, preheader)


def _phi_init_step(phi, preheader, latch):
    if len(phi.operands) != 2:
        return None, None
    values = dict(zip(phi.phi_blocks, phi.operands))
    if preheader not in values or latch not in values:
        return None, None
    return values[preheader], values[latch]


def _is_plus_one(add: Instruction, phi: Instruction) -> bool:
    a, b = add.operands
    return (a is phi and isinstance(b, Constant) and b.value == 1) or (
        b is phi and isinstance(a, Constant) and a.value == 1
    )


_REDUCTION_OPS = frozenset(
    "add fadd mul fmul and or xor fmin fmax smin smax".split()
)


def _is_reduction_phi(phi, preheader, latch, loop) -> bool:
    _, stepval = _phi_init_step(phi, preheader, latch)
    if stepval is None:
        return False
    if stepval is phi:
        return True  # value unchanged in loop
    if not isinstance(stepval, Instruction):
        return False
    if stepval.op in _REDUCTION_OPS and phi in stepval.operands:
        return True
    if stepval.op == "select":
        # Only the true min/max pattern select(cmp(x, phi), x, phi) is
        # permutation-invariant.  Index selects (argmin: select(cmp(t,
        # best_t), j, best_j)) are NOT: under ties the result depends on
        # iteration order, which the stagger changes -> reject.
        cond, val_a, val_b = stepval.operands
        if phi not in (val_a, val_b):
            return False
        other = val_a if val_b is phi else val_b
        if not (isinstance(cond, Instruction) and cond.op in ("icmp", "fcmp")):
            return False
        return other in cond.operands
    if stepval.op == "call" and stepval.callee is not None:
        name = stepval.callee.name
        if name.startswith("math.fmin") or name.startswith("math.fmax"):
            return phi in stepval.operands
    return False


def _loop_bound(function, loop, iv, step):
    """Find the exit test ``iv < N`` (or ``step != N`` / ``step < N``).

    The loop must have exactly ONE exiting branch and it must be the
    canonical counter test.  Any additional exit is an early break whose
    outcome depends on iteration order, which the stagger permutes — e.g.
    a search loop that stops at the first match would visit a rotated
    prefix instead.
    """
    exit_terms = []
    for block in loop.ordered():
        term = block.terminator
        if term is None or term.op != "condbr":
            continue
        if any(t not in loop.blocks for t in term.targets):
            exit_terms.append(term)
    if len(exit_terms) != 1:
        return None
    cond = exit_terms[0].operands[0]
    if not isinstance(cond, Instruction) or cond.op != "icmp":
        return None
    lhs, rhs = cond.operands
    for a, b in ((lhs, rhs), (rhs, lhs)):
        if a is iv or a is step:
            if cond.pred in ("slt", "ult", "ne", "sle", "ule", "sgt", "ugt"):
                if _is_loop_invariant(b, loop):
                    return b
    return None


def _is_loop_invariant(value, loop) -> bool:
    if isinstance(value, Constant):
        return True
    if isinstance(value, Instruction):
        return value.block not in loop.blocks
    return True  # arguments/globals


def _body_is_permutable(function, loop, iv, step) -> bool:
    for block in loop.ordered():
        for instr in block.instructions:
            if instr.op == "store":
                pointer = instr.operands[1]
                if not _is_private(pointer):
                    return False
            if instr.op == "call" and instr.callee is not None:
                if instr.callee.name.startswith("atomic."):
                    return False
    return True


def _is_private(pointer) -> bool:
    seen = 0
    while isinstance(pointer, Instruction) and seen < 32:
        if pointer.op == "alloca":
            return True
        if pointer.op == "gep":
            pointer = pointer.operands[0]
            seen += 1
            continue
        return False
    return False


def _has_escaping_values(function, loop, iv, step) -> bool:
    """True if a value computed in the loop is used after it.  Such a use
    observes the *last* iteration's value, and the stagger changes which
    element that is.  Reduction results escape through header phis (already
    vetted as commutative); the counter itself always exits equal to the
    bound, so ``iv``/``step`` are safe.

    Header phis other than ``iv`` passed ``_is_reduction_phi``, so their
    final value is order-independent — but the *step* instruction of a
    min/max select is not (a post-loop use of the select sees the running
    value at the last visited index only if the loop completed, which it
    did; select steps are order-independent too once the loop runs to
    completion).  Every non-phi body instruction is conservatively treated
    as order-dependent.
    """
    safe = {id(iv), id(step)}
    for phi in loop.header.phis():
        safe.add(id(phi))
        values = dict(zip(phi.phi_blocks, phi.operands))
        for block, value in values.items():
            if block in loop.blocks:
                # The latch-side reduction step yields the same final value
                # regardless of visit order (commutative by construction).
                safe.add(id(value))
    for block in function.blocks:
        if block in loop.blocks:
            continue
        for instr in block.instructions:
            for op in instr.operands:
                if (
                    isinstance(op, Instruction)
                    and op.block in loop.blocks
                    and id(op) not in safe
                ):
                    return True
    return False


def _has_uniform_access(function, loop) -> bool:
    """At least one load in the loop whose address does not derive from the
    work-item id (so all lanes read the same locations)."""
    divergent = _id_dependent_values(function)
    for block in loop.ordered():
        for instr in block.instructions:
            if instr.op == "load" and id(instr.operands[0]) not in divergent:
                return True
    return False


def _id_dependent_values(function) -> set[int]:
    dependent: set[int] = set()
    changed = True
    while changed:
        changed = False
        for instr in function.instructions():
            if id(instr) in dependent:
                continue
            if instr.op == "call" and instr.callee is GPU_GLOBAL_ID:
                dependent.add(id(instr))
                changed = True
                continue
            # Kernel convention: the work-item index argument is named "i".
            if any(
                id(op) in dependent
                or (getattr(op, "name", None) == "i" and op.__class__.__name__ == "Argument")
                for op in instr.operands
            ):
                dependent.add(id(instr))
                changed = True
            if instr.op == "load" and any(
                id(op) in dependent for op in instr.operands
            ):
                dependent.add(id(instr))
                changed = True
    return dependent


def _apply_stagger(function: Function, loop, candidate: _Candidate) -> None:
    """Emit the Figure 5 rewrite in strength-reduced form.

    The naive ``j_tmp = (j + start) % N`` costs an integer division on
    every iteration (slow on GPU EUs), so we keep ``j_tmp`` as a second
    induction variable with wrap-around: it starts at ``start % N`` (one
    division in the preheader) and steps ``j_tmp+1 == N ? 0 : j_tmp+1``.
    """
    from ..ir import Constant, add_phi_incoming

    header = loop.header
    latch = loop.latches[0]
    iv = candidate.iv
    step = candidate.step
    bound = candidate.bound
    preheader = candidate.preheader
    itype: IntType = iv.type  # loop counters are integers

    # Preheader: start = (global_id() / num_cores()) % N
    pre_term = preheader.terminator
    insert_at = preheader.instructions.index(pre_term)

    loop_loc = iv.loc  # stagger arithmetic is charged to the loop counter

    def pre_insert(instr):
        nonlocal insert_at
        instr.loc = loop_loc
        preheader.insert(insert_at, instr)
        insert_at += 1
        return instr
    gid = Instruction("call", GPU_GLOBAL_ID.return_type, [], name="l3.gid")
    gid.callee = GPU_GLOBAL_ID
    pre_insert(gid)
    cores = Instruction("call", GPU_NUM_CORES.return_type, [], name="l3.W")
    cores.callee = GPU_NUM_CORES
    pre_insert(cores)
    gid_ext = gid
    cores_ext = cores
    if itype.bits != 32:
        gid_ext = pre_insert(Instruction("sext", itype, [gid], name="l3.gid.ext"))
        cores_ext = pre_insert(Instruction("sext", itype, [cores], name="l3.W.ext"))
    start = pre_insert(
        Instruction("udiv", itype, [gid_ext, cores_ext], name="l3.start")
    )
    jt0 = pre_insert(Instruction("urem", itype, [start, bound], name="l3.jt0"))

    # Header: j_tmp as a wrap-around induction variable.
    jtmp = Instruction("phi", itype, [], name="l3.j_tmp")
    jtmp.loc = loop_loc
    header.insert(0, jtmp)
    jtmp.annotations["l3opt"] = True
    add_phi_incoming(jtmp, jt0, preheader)

    # Latch: j_tmp' = (j_tmp + 1 == N) ? 0 : j_tmp + 1
    latch_term = latch.terminator
    latch_at = latch.instructions.index(latch_term)
    inc = Instruction("add", itype, [jtmp, Constant(itype, 1)], name="l3.jt.inc")
    inc.loc = loop_loc
    latch.insert(latch_at, inc)
    wrap = Instruction("icmp", _bool_type(), [inc, bound], name="l3.jt.wrap")
    wrap.pred = "eq"
    wrap.loc = loop_loc
    latch.insert(latch_at + 1, wrap)
    nxt = Instruction(
        "select", itype, [wrap, Constant(itype, 0), inc], name="l3.jt.next"
    )
    nxt.loc = loop_loc
    latch.insert(latch_at + 2, nxt)
    add_phi_incoming(jtmp, nxt, latch)

    # Replace body uses of j with j_tmp, except the increment, the exit
    # compare and the stagger arithmetic itself.
    protected = {id(step), id(inc), id(wrap), id(nxt)}
    for block in loop.ordered():
        for instr in block.instructions:
            if id(instr) in protected or instr.op == "phi":
                continue
            if instr.op == "icmp" and _feeds_exit(instr, loop):
                continue
            instr.replace_uses_of(iv, jtmp)
    function.attributes["l3opt_applied"] = (
        function.attributes.get("l3opt_applied", 0) + 1
    )


def _bool_type():
    from ..ir.types import BOOL

    return BOOL


def _feeds_exit(icmp: Instruction, loop) -> bool:
    for block in loop.ordered():
        term = block.terminator
        if (
            term is not None
            and term.op == "condbr"
            and term.operands[0] is icmp
            and any(t not in loop.blocks for t in term.targets)
        ):
            return True
    return False
