"""Tail-recursion elimination.

The paper's programming model (section 2.1) forbids recursion on the GPU
*except* tail recursion the compiler can eliminate.  This pass rewrites a
self-call in tail position (``ret f(args)`` or a tail ``call`` followed by
``ret`` of its value / plain ``ret`` for void) into a jump back to a loop
header whose phis merge the entry arguments with the recursive arguments.
"""

from __future__ import annotations

from ..ir import Function, Instruction, add_phi_incoming


def eliminate_tail_recursion(function: Function) -> bool:
    if not function.blocks:
        return False
    sites = _tail_call_sites(function)
    if not sites:
        return False

    # Create a dispatch header after entry: entry branches to it, phis merge
    # argument values from entry and from each tail-call site.
    old_entry = function.entry
    header = function.new_block("tailrec.header")
    # header must follow entry in the block list but act as the loop target.
    function.blocks.remove(header)
    function.blocks.insert(1, header)

    # Move all original entry instructions into the header; the entry keeps
    # only an unconditional branch.  (Allocas stay in entry so they are not
    # re-executed per iteration.)
    moved: list[Instruction] = []
    for instr in list(old_entry.instructions):
        if instr.op == "alloca":
            continue
        old_entry.remove(instr)
        moved.append(instr)
    for instr in moved:
        header.append(instr)
    br = Instruction("br", function.ftype.ret.__class__() if False else _void(), [])
    br.targets = [header]
    old_entry.append(br)
    _redirect_phi_blocks(function, old_entry, header, exclude=header)

    # Argument phis in the header.
    first_call_loc = sites[0][0].loc
    arg_phis = []
    for arg in function.args:
        phi = Instruction("phi", arg.type, [], name=f"{arg.name}.tr")
        phi.loc = first_call_loc
        header.insert(0, phi)
        add_phi_incoming(phi, arg, old_entry)
        arg_phis.append(phi)
    # All uses of arguments (outside the entry block) now use the phis.
    for block in function.blocks:
        if block is old_entry:
            continue
        for instr in block.instructions:
            if instr in arg_phis:
                continue
            for arg, phi in zip(function.args, arg_phis):
                instr.replace_uses_of(arg, phi)

    # Rewrite each tail-call site into a jump to the header.
    for call, ret in sites:
        block = call.block
        for arg_phi, actual in zip(arg_phis, call.operands):
            add_phi_incoming(arg_phi, actual, block)
        block.remove(ret)
        block.remove(call)
        jump = Instruction("br", _void(), [])
        jump.targets = [header]
        jump.loc = call.loc
        block.append(jump)
    return True


def _tail_call_sites(function: Function) -> list[tuple[Instruction, Instruction]]:
    sites = []
    for block in function.blocks:
        instrs = block.instructions
        if len(instrs) < 2:
            continue
        ret = instrs[-1]
        call = instrs[-2]
        if ret.op != "ret" or call.op != "call" or call.callee is not function:
            continue
        if ret.operands and ret.operands[0] is not call:
            continue  # returns something other than the call result
        # The call result must not be used anywhere else.
        uses = sum(
            1
            for instr in function.instructions()
            for op in instr.operands
            if op is call
        )
        if ret.operands and uses != 1:
            continue
        if not ret.operands and uses != 0:
            continue
        sites.append((call, ret))
    return sites


def has_nontail_recursion(function: Function) -> bool:
    """True if the function still calls itself after tail-call elimination
    has run — the restriction checker uses this (paper section 2.1)."""
    return any(
        instr.op == "call" and instr.callee is function
        for instr in function.instructions()
    )


def _void():
    from ..ir.types import VOID

    return VOID


def _redirect_phi_blocks(function: Function, old_block, new_block, exclude) -> None:
    for block in function.blocks:
        if block is exclude:
            continue
        for phi in block.phis():
            phi.phi_blocks = [
                new_block if b is old_block else b for b in phi.phi_blocks
            ]
