"""CFG simplification: delete unreachable blocks, merge straight-line
block chains, thread trivial jumps, and drop empty forwarding blocks
(keeping phi edges consistent)."""

from __future__ import annotations

from ..ir import Function, Instruction


def simplify_cfg(function: Function) -> bool:
    if not function.blocks:
        return False
    changed = False
    changed = remove_unreachable_blocks(function) or changed
    changed = _merge_linear_chains(function) or changed
    changed = _remove_forwarding_blocks(function) or changed
    return changed


def remove_unreachable_blocks(function: Function) -> bool:
    """Delete blocks no path from entry reaches, dropping the phi edges
    they feed into surviving blocks.

    Branch folding (constfold) can orphan whole subgraphs; a surviving
    phi that still lists a dead predecessor is invalid (its incoming
    value no longer dominates any real edge), so the edges must go with
    the blocks.
    """
    reachable = set()
    work = [function.entry]
    while work:
        block = work.pop()
        if block in reachable:
            continue
        reachable.add(block)
        term = block.terminator
        if term is not None:
            work.extend(term.targets)
    dead = [block for block in function.blocks if block not in reachable]
    if not dead:
        return False
    dead_set = set(dead)
    for block in function.blocks:
        if block in dead_set:
            continue
        for phi in block.phis():
            for idx in reversed(range(len(phi.phi_blocks))):
                if phi.phi_blocks[idx] in dead_set:
                    del phi.phi_blocks[idx]
                    del phi.operands[idx]
    for block in dead:
        function.remove_block(block)
    return True


def _merge_linear_chains(function: Function) -> bool:
    """Merge B into A when A's only successor is B and B's only
    predecessor is A."""
    changed = False
    again = True
    while again:
        again = False
        preds = function.compute_preds()
        for block in list(function.blocks):
            term = block.terminator
            if term is None or term.op != "br":
                continue
            succ = term.targets[0]
            if succ is block or succ is function.entry:
                continue
            if len(preds[succ]) != 1:
                continue
            if succ.phis():
                for phi in succ.phis():
                    # Single predecessor: the phi is trivial.
                    value = phi.operands[0] if phi.operands else None
                    if value is None:
                        continue
                    _replace_all_uses(function, phi, value)
                    succ.remove(phi)
            block.remove(term)
            for instr in list(succ.instructions):
                succ.remove(instr)
                block.append(instr)
            _redirect_phi_blocks(function, succ, block)
            function.remove_block(succ)
            changed = True
            again = True
            break
    return changed


def _remove_forwarding_blocks(function: Function) -> bool:
    """Remove blocks containing only ``br target`` by retargeting their
    predecessors, when phi consistency allows it."""
    changed = False
    again = True
    while again:
        again = False
        preds = function.compute_preds()
        for block in list(function.blocks):
            if block is function.entry:
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator
            if term is None or term.op != "br":
                continue
            target = term.targets[0]
            if target is block:
                continue
            # A condbr with both arms aimed at this block lists its source
            # twice in compute_preds; phi edges are per-block, so dedupe
            # (order-preserving) before rewriting them.
            block_preds = list(dict.fromkeys(preds[block]))
            if not block_preds:
                continue
            # A phi in the target distinguishes incoming edges; retargeting
            # is safe only if no pred already flows into target (it would
            # create a duplicate edge with possibly-different phi values).
            if target.phis():
                target_preds = set(preds[target])
                if any(p in target_preds for p in block_preds):
                    continue
                for phi in target.phis():
                    if block in phi.phi_blocks:
                        idx = phi.phi_blocks.index(block)
                        incoming_value = phi.operands[idx]
                        del phi.phi_blocks[idx]
                        del phi.operands[idx]
                        for pred in block_preds:
                            phi.phi_blocks.append(pred)
                            phi.operands.append(incoming_value)
            for pred in block_preds:
                pterm = pred.terminator
                if pterm is not None:
                    pterm.targets = [
                        target if t is block else t for t in pterm.targets
                    ]
            function.remove_block(block)
            changed = True
            again = True
            break
    return changed


def _redirect_phi_blocks(function: Function, old_block, new_block) -> None:
    for block in function.blocks:
        for phi in block.phis():
            phi.phi_blocks = [
                new_block if b is old_block else b for b in phi.phi_blocks
            ]


def _replace_all_uses(function: Function, old, new) -> None:
    for instr in function.instructions():
        instr.replace_uses_of(old, new)
