"""Loop-invariant code motion (the paper's "aggressive register promotion
... to eliminate memory loads of the same location, in particular, across
loop iterations").

Without alias analysis we hoist conservatively:

* pure arithmetic/casts/geps whose operands are loop-invariant are hoisted
  to the preheader unconditionally;
* a ``load`` with a loop-invariant address is hoisted only when the loop
  body contains *no* stores, atomics, or opaque calls (so nothing can
  change the loaded location mid-loop).  This is exactly what makes body
  fields (``this->n``, ``this->a``) live in registers across iterations.

Loops are processed innermost-first so hoisted values can cascade outward.
Speculation safety: hoisted instructions come only from blocks that
dominate every loop latch (they execute on every iteration), so executing
them in the preheader adds no new faults.
"""

from __future__ import annotations

from ..ir import Constant, DominatorTree, Function, Instruction, find_loops
from ..ir.values import BINARY_OPS, CAST_OPS


def loop_invariant_code_motion(function: Function) -> bool:
    if not function.blocks:
        return False
    changed = False
    loops = find_loops(function)
    # innermost first
    loops.sort(key=lambda l: -l.depth)
    for loop in loops:
        changed = _hoist_one_loop(function, loop) or changed
    return changed


def _hoist_one_loop(function: Function, loop) -> bool:
    preds = function.compute_preds()
    outside_preds = [p for p in preds[loop.header] if p not in loop.blocks]
    if len(outside_preds) != 1:
        return False
    preheader = outside_preds[0]
    if preheader.terminator is None or preheader.terminator.op == "condbr":
        # Only hoist into a dedicated edge; a conditional preheader would
        # speculate the hoisted code on the untaken path.  (The frontend
        # always emits a straight-line block before for/while headers.)
        if len(preheader.successors()) != 1:
            return False

    domtree = DominatorTree(function)
    loop_has_memory_writes = any(
        instr.op == "store"
        or (
            instr.op in ("call", "vcall")
            and instr.has_side_effects
        )
        for block in loop.blocks
        for instr in block.instructions
    )

    loop_defs = {
        instr
        for block in loop.blocks
        for instr in block.instructions
    }

    def is_invariant(value) -> bool:
        if isinstance(value, Instruction):
            return value not in loop_defs
        return True  # constants, arguments, globals

    changed = False
    again = True
    while again:
        again = False
        for block in loop.ordered():
            # Only from blocks executed on every iteration.
            if not all(domtree.dominates(block, latch) for latch in loop.latches):
                continue
            for instr in list(block.instructions):
                if not all(is_invariant(op) for op in instr.operands):
                    continue
                hoistable = False
                if instr.op in BINARY_OPS or instr.op in CAST_OPS or instr.op in (
                    "icmp",
                    "fcmp",
                    "select",
                    "gep",
                ):
                    if instr.op in ("sdiv", "udiv", "srem", "urem"):
                        divisor = instr.operands[1]
                        hoistable = isinstance(divisor, Constant) and divisor.value != 0
                    else:
                        hoistable = True
                elif instr.op == "call" and instr.callee is not None:
                    hoistable = not instr.has_side_effects
                elif instr.op == "load":
                    hoistable = not loop_has_memory_writes
                if not hoistable:
                    continue
                block.remove(instr)
                term_index = preheader.instructions.index(preheader.terminator)
                preheader.insert(term_index, instr)
                loop_defs.discard(instr)
                changed = True
                again = True
    return changed
