"""Pass manager and the standard pipelines.

Two pipelines mirror the paper's compiler (section 3 and 4):

* :func:`standard_pipeline` — the classical optimizations run on every
  function (register promotion via mem2reg, constant folding, CSE, DCE,
  CFG simplification, inlining of device functions, tail-recursion
  elimination, loop unrolling bounded by max-live).
* :func:`kernel_pipeline` — device-side lowering for offloaded kernels:
  devirtualization (inline test sequences for virtual calls), SVM pointer
  translation insertion, then optionally PTROPT (section 4.1) and L3OPT
  (section 4.2), followed by a cleanup round.

``OptConfig`` selects the paper's four measured configurations: GPU,
GPU+PTROPT, GPU+L3OPT and GPU+ALL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..ir import Function, Module, verify_function


@dataclass(frozen=True)
class OptConfig:
    """Which optional optimizations to apply to device kernels.

    ``device_alloc`` enables the extension the paper lists as future work
    ("We plan to lift the last two restrictions"): device-side ``new``
    through an atomic bump allocator in the shared region.  Off by
    default, matching the published system.
    """

    ptropt: bool = False
    l3opt: bool = False
    classical: bool = True
    unroll: bool = True
    verify: bool = True
    device_alloc: bool = False

    @property
    def label(self) -> str:
        if self.ptropt and self.l3opt:
            return "GPU+ALL"
        if self.ptropt:
            return "GPU+PTROPT"
        if self.l3opt:
            return "GPU+L3OPT"
        return "GPU"

    @staticmethod
    def gpu() -> "OptConfig":
        return OptConfig()

    @staticmethod
    def gpu_ptropt() -> "OptConfig":
        return OptConfig(ptropt=True)

    @staticmethod
    def gpu_l3opt() -> "OptConfig":
        return OptConfig(l3opt=True)

    @staticmethod
    def gpu_all() -> "OptConfig":
        return OptConfig(ptropt=True, l3opt=True)

    @staticmethod
    def all_configs() -> list["OptConfig"]:
        return [
            OptConfig.gpu(),
            OptConfig.gpu_ptropt(),
            OptConfig.gpu_l3opt(),
            OptConfig.gpu_all(),
        ]


@dataclass
class PassStats:
    name: str
    runs: int = 0
    changed: int = 0
    seconds: float = 0.0


class PassManager:
    """Runs function passes with optional inter-pass verification."""

    def __init__(self, verify: bool = True):
        self.verify = verify
        self.stats: dict[str, PassStats] = {}

    def run(
        self,
        function: Function,
        passes: list[Callable[[Function], bool]],
        max_iterations: int = 1,
    ) -> bool:
        """Run ``passes`` in order, repeating up to ``max_iterations``
        rounds while any pass reports a change."""
        any_change = False
        for _ in range(max_iterations):
            round_change = False
            for pass_fn in passes:
                name = getattr(pass_fn, "__name__", str(pass_fn))
                stat = self.stats.setdefault(name, PassStats(name))
                start = time.perf_counter()
                changed = bool(pass_fn(function))
                stat.seconds += time.perf_counter() - start
                stat.runs += 1
                if changed:
                    stat.changed += 1
                    round_change = True
                    if self.verify:
                        verify_function(function)
            any_change = any_change or round_change
            if not round_change:
                break
        return any_change


def standard_pipeline(
    module: Module,
    function: Function,
    config: OptConfig,
    manager: Optional[PassManager] = None,
) -> None:
    from .constfold import constant_fold
    from .cse import common_subexpression_elimination
    from .dce import dead_code_elimination
    from .inline import make_inliner
    from .licm import loop_invariant_code_motion
    from .mem2reg import promote_memory_to_registers
    from .simplifycfg import simplify_cfg
    from .tailrec import eliminate_tail_recursion

    manager = manager or PassManager(verify=config.verify)
    manager.run(function, [eliminate_tail_recursion])
    manager.run(function, [make_inliner(module)])
    manager.run(function, [promote_memory_to_registers])
    if config.classical:
        manager.run(
            function,
            [
                constant_fold,
                common_subexpression_elimination,
                dead_code_elimination,
                simplify_cfg,
            ],
            max_iterations=4,
        )
        manager.run(function, [loop_invariant_code_motion])
        manager.run(
            function,
            [
                constant_fold,
                common_subexpression_elimination,
                dead_code_elimination,
                simplify_cfg,
            ],
            max_iterations=2,
        )


def kernel_pipeline(
    module: Module,
    kernel: Function,
    config: OptConfig,
    manager: Optional[PassManager] = None,
    observer=None,
) -> None:
    """Device-side lowering for one kernel function (already past the
    standard pipeline).

    ``observer`` (a ``repro.obs.Observer``) additionally brackets the
    SVM-lowering step in a dedicated phase span; pass-level statistics are
    always available through ``manager.stats`` regardless.
    """
    from .constfold import constant_fold
    from .cse import common_subexpression_elimination
    from .dce import dead_code_elimination
    from .devirt import expand_virtual_calls
    from .l3opt import reduce_cacheline_contention
    from .licm import loop_invariant_code_motion
    from .ptropt import optimize_pointer_translations
    from .simplifycfg import simplify_cfg
    from .svmlower import lower_svm_pointers
    from .unroll import unroll_loops

    from .inline import make_inliner

    manager = manager or PassManager(verify=config.verify)
    manager.run(kernel, [lambda f: expand_virtual_calls(module, f)])
    # Devirtualization introduces direct calls to the candidate targets;
    # flatten them into the kernel so SVM lowering sees every dereference.
    manager.run(kernel, [make_inliner(module)])
    if config.classical:
        manager.run(
            kernel,
            [
                constant_fold,
                common_subexpression_elimination,
                dead_code_elimination,
                simplify_cfg,
                loop_invariant_code_motion,
            ],
            max_iterations=2,
        )
    if config.l3opt:
        manager.run(kernel, [reduce_cacheline_contention])
    if observer is not None:
        with observer.span("svm_lower", "phase", kernel=kernel.name):
            manager.run(kernel, [lower_svm_pointers])
    else:
        manager.run(kernel, [lower_svm_pointers])
    if config.ptropt:
        manager.run(kernel, [optimize_pointer_translations])
        manager.run(
            kernel,
            [
                constant_fold,
                common_subexpression_elimination,
                dead_code_elimination,
                simplify_cfg,
            ],
            max_iterations=4,
        )
    else:
        # Without PTROPT only trivial cleanup runs; translation arithmetic
        # stays at every dereference, as in the paper's GPU baseline.
        manager.run(kernel, [dead_code_elimination])
    if config.classical and config.unroll:
        manager.run(kernel, [unroll_loops])
        manager.run(
            kernel,
            [constant_fold, dead_code_elimination, simplify_cfg],
            max_iterations=2,
        )
