"""Pass manager and the standard pipelines.

Two pipelines mirror the paper's compiler (section 3 and 4):

* :func:`standard_pipeline` — the classical optimizations run on every
  function (register promotion via mem2reg, constant folding, CSE, DCE,
  CFG simplification, inlining of device functions, tail-recursion
  elimination, loop unrolling bounded by max-live).
* :func:`kernel_pipeline` — device-side lowering for offloaded kernels:
  devirtualization (inline test sequences for virtual calls), SVM pointer
  translation insertion, then optionally PTROPT (section 4.1) and L3OPT
  (section 4.2), followed by a cleanup round.

``OptConfig`` selects the paper's four measured configurations: GPU,
GPU+PTROPT, GPU+L3OPT and GPU+ALL.

Both pipelines resolve their passes through :data:`PASS_REGISTRY` (name →
callable) so that individual passes can be switched off by name via
``OptConfig.disabled`` — the hook the differential fuzzer
(:mod:`repro.fuzz`) uses to compare the full pipeline against every
per-pass-disabled configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..ir import Function, Module, verify_function


def _registry() -> dict:
    from .constfold import constant_fold
    from .cse import common_subexpression_elimination
    from .dce import dead_code_elimination
    from .devirt import expand_virtual_calls
    from .inline import make_inliner
    from .l3opt import reduce_cacheline_contention
    from .licm import loop_invariant_code_motion
    from .mem2reg import promote_memory_to_registers
    from .ptropt import optimize_pointer_translations
    from .simplifycfg import simplify_cfg
    from .svmlower import lower_svm_pointers
    from .tailrec import eliminate_tail_recursion
    from .unroll import unroll_loops

    return {
        "tailrec": eliminate_tail_recursion,
        "inline": make_inliner,  # factory: make_inliner(module) -> pass
        "mem2reg": promote_memory_to_registers,
        "constfold": constant_fold,
        "cse": common_subexpression_elimination,
        "dce": dead_code_elimination,
        "simplifycfg": simplify_cfg,
        "licm": loop_invariant_code_motion,
        "devirt": expand_virtual_calls,  # called as devirt(module, fn)
        "l3opt": reduce_cacheline_contention,
        "svmlower": lower_svm_pointers,
        "ptropt": optimize_pointer_translations,
        "unroll": unroll_loops,
    }


#: Every pipeline pass by name.  The pipelines fetch passes from here at
#: run time, so tests (and the fuzzer's injected-bug self-checks) may
#: monkeypatch an entry and see the change take effect everywhere.
PASS_REGISTRY: dict = _registry()

#: Passes that may be disabled without structurally breaking a device
#: kernel.  ``svmlower`` is excluded: without pointer translation a GPU
#: kernel dereferences CPU virtual addresses and faults by construction.
DISABLEABLE_PASSES: tuple = tuple(
    name for name in PASS_REGISTRY if name != "svmlower"
)

#: Disableable passes whose absence still leaves the kernel runnable on
#: the GPU path.  ``inline`` flattens callees into the kernel so SVM
#: lowering sees every dereference, and ``devirt`` removes vtable loads
#: (vtable pointers are CPU addresses); disabling either is only
#: observable on the CPU path.
GPU_SAFE_DISABLE: tuple = tuple(
    name for name in DISABLEABLE_PASSES if name not in ("inline", "devirt")
)


@dataclass(frozen=True)
class OptConfig:
    """Which optional optimizations to apply to device kernels.

    ``device_alloc`` enables the extension the paper lists as future work
    ("We plan to lift the last two restrictions"): device-side ``new``
    through an atomic bump allocator in the shared region.  Off by
    default, matching the published system.

    ``disabled`` names pipeline passes (keys of :data:`PASS_REGISTRY`)
    to skip entirely — the differential-fuzzing oracle compiles one
    configuration per disabled pass and cross-checks results against the
    full pipeline.
    """

    ptropt: bool = False
    l3opt: bool = False
    classical: bool = True
    unroll: bool = True
    verify: bool = True
    device_alloc: bool = False
    disabled: frozenset = frozenset()

    def __post_init__(self):
        unknown = set(self.disabled) - set(PASS_REGISTRY)
        if unknown:
            raise ValueError(f"unknown passes in disabled set: {sorted(unknown)}")
        # Normalize so configs compare/hash equal regardless of the
        # iterable the caller passed.
        object.__setattr__(self, "disabled", frozenset(self.disabled))

    def without_pass(self, name: str) -> "OptConfig":
        """This configuration with pipeline pass ``name`` switched off."""
        return OptConfig(
            ptropt=self.ptropt,
            l3opt=self.l3opt,
            classical=self.classical,
            unroll=self.unroll,
            verify=self.verify,
            device_alloc=self.device_alloc,
            disabled=self.disabled | {name},
        )

    def cache_key(self) -> str:
        """Canonical string form of this configuration for content-hashed
        compilation artifacts (``repro.runtime.compiler``): every field in
        a fixed order, with the disabled set sorted, so equal configs —
        however constructed — always produce the same stage hashes."""
        return (
            f"ptropt={int(self.ptropt)};l3opt={int(self.l3opt)};"
            f"classical={int(self.classical)};unroll={int(self.unroll)};"
            f"verify={int(self.verify)};device_alloc={int(self.device_alloc)};"
            f"disabled={','.join(sorted(self.disabled))}"
        )

    @property
    def label(self) -> str:
        if self.ptropt and self.l3opt:
            return "GPU+ALL"
        if self.ptropt:
            return "GPU+PTROPT"
        if self.l3opt:
            return "GPU+L3OPT"
        return "GPU"

    @staticmethod
    def gpu() -> "OptConfig":
        return OptConfig()

    @staticmethod
    def gpu_ptropt() -> "OptConfig":
        return OptConfig(ptropt=True)

    @staticmethod
    def gpu_l3opt() -> "OptConfig":
        return OptConfig(l3opt=True)

    @staticmethod
    def gpu_all() -> "OptConfig":
        return OptConfig(ptropt=True, l3opt=True)

    @staticmethod
    def all_configs() -> list["OptConfig"]:
        return [
            OptConfig.gpu(),
            OptConfig.gpu_ptropt(),
            OptConfig.gpu_l3opt(),
            OptConfig.gpu_all(),
        ]


@dataclass
class PassStats:
    name: str
    runs: int = 0
    changed: int = 0
    seconds: float = 0.0


class PassManager:
    """Runs function passes with optional inter-pass verification."""

    def __init__(self, verify: bool = True):
        self.verify = verify
        self.stats: dict[str, PassStats] = {}

    def run(
        self,
        function: Function,
        passes: list[Callable[[Function], bool]],
        max_iterations: int = 1,
    ) -> bool:
        """Run ``passes`` in order, repeating up to ``max_iterations``
        rounds while any pass reports a change."""
        any_change = False
        for _ in range(max_iterations):
            round_change = False
            for pass_fn in passes:
                name = getattr(pass_fn, "__name__", str(pass_fn))
                stat = self.stats.setdefault(name, PassStats(name))
                start = time.perf_counter()
                changed = bool(pass_fn(function))
                stat.seconds += time.perf_counter() - start
                stat.runs += 1
                if changed:
                    stat.changed += 1
                    round_change = True
                    if self.verify:
                        verify_function(function)
            any_change = any_change or round_change
            if not round_change:
                break
        return any_change


def _resolve(config: OptConfig, module: Module, names) -> list:
    """Look up enabled passes by name, skipping ``config.disabled``.

    ``inline`` resolves through its factory (it closes over the module)
    and ``devirt`` gets the module bound as its first argument; both keep
    a stable ``__name__`` so ``PassManager.stats`` stays readable.
    """
    passes = []
    for name in names:
        if name in config.disabled:
            continue
        fn = PASS_REGISTRY[name]
        if name == "inline":
            fn = fn(module)
        elif name == "devirt":
            devirt = fn

            def fn(function, _devirt=devirt):
                return _devirt(module, function)

            fn.__name__ = "expand_virtual_calls"
        passes.append(fn)
    return passes


def standard_pipeline(
    module: Module,
    function: Function,
    config: OptConfig,
    manager: Optional[PassManager] = None,
) -> None:
    manager = manager or PassManager(verify=config.verify)
    manager.run(function, _resolve(config, module, ["tailrec"]))
    manager.run(function, _resolve(config, module, ["inline"]))
    manager.run(function, _resolve(config, module, ["mem2reg"]))
    if config.classical:
        cleanup = _resolve(
            config, module, ["constfold", "cse", "dce", "simplifycfg"]
        )
        manager.run(function, cleanup, max_iterations=4)
        manager.run(function, _resolve(config, module, ["licm"]))
        manager.run(function, cleanup, max_iterations=2)


def kernel_pipeline(
    module: Module,
    kernel: Function,
    config: OptConfig,
    manager: Optional[PassManager] = None,
    observer=None,
) -> None:
    """Device-side lowering for one kernel function (already past the
    standard pipeline).

    ``observer`` (a ``repro.obs.Observer``) additionally brackets the
    SVM-lowering step in a dedicated phase span; pass-level statistics are
    always available through ``manager.stats`` regardless.
    """
    manager = manager or PassManager(verify=config.verify)
    manager.run(kernel, _resolve(config, module, ["devirt"]))
    # Devirtualization introduces direct calls to the candidate targets;
    # flatten them into the kernel so SVM lowering sees every dereference.
    manager.run(kernel, _resolve(config, module, ["inline"]))
    if config.classical:
        manager.run(
            kernel,
            _resolve(
                config,
                module,
                ["constfold", "cse", "dce", "simplifycfg", "licm"],
            ),
            max_iterations=2,
        )
    if config.l3opt:
        manager.run(kernel, _resolve(config, module, ["l3opt"]))
    svmlower = _resolve(config, module, ["svmlower"])
    if observer is not None:
        with observer.span("svm_lower", "phase", kernel=kernel.name):
            manager.run(kernel, svmlower)
    else:
        manager.run(kernel, svmlower)
    if config.ptropt:
        manager.run(kernel, _resolve(config, module, ["ptropt"]))
        manager.run(
            kernel,
            _resolve(config, module, ["constfold", "cse", "dce", "simplifycfg"]),
            max_iterations=4,
        )
    else:
        # Without PTROPT only trivial cleanup runs; translation arithmetic
        # stays at every dereference, as in the paper's GPU baseline.
        manager.run(kernel, _resolve(config, module, ["dce"]))
    if config.classical and config.unroll:
        manager.run(kernel, _resolve(config, module, ["unroll"]))
        manager.run(
            kernel,
            _resolve(config, module, ["constfold", "dce", "simplifycfg"]),
            max_iterations=2,
        )
