"""PTROPT — reduce software-SVM translation overhead (paper section 4.1).

The SVM lowering pass translates lazily: a ``svm.to_gpu`` sits in front of
every GPU dereference, so a pointer dereferenced in a loop pays translation
arithmetic on every iteration (the paper's Figure 4 discussion).  PTROPT
implements the paper's dual-representation strategy:

1. **Commute translation through address arithmetic.**  ``to_gpu(gep(p, i))``
   is rewritten to ``gep(to_gpu(p), i)`` — translation is adding a runtime
   constant, so it distributes over pointer arithmetic.  The original
   CPU-representation gep *stays* for any use that needs the CPU form (for
   example storing the pointer into memory, like ``b[i] = a[i]``); dead
   copies are cleaned by DCE.  After the rewrite the translated value is the
   *base* pointer, which is typically loop-invariant.

2. **Eager placement at the definition.**  Each distinct source value gets
   one translation placed immediately after its definition (entry block for
   arguments), and all translation sites of that value are merged into it.
   Combined with step 1 this hoists translations out of loops.

3. **Live-range shrinking (sinking).**  A translation whose uses all sit in
   a single block that is not in a deeper loop is moved down to that block,
   shrinking the register live range — the paper's nod to optimal code
   motion [Knoop et al.].

DCE afterwards deletes translations of pointers never dereferenced on the
GPU (the "lazy is better" case of Figure 4 falls out for free: pointers that
are only loaded and stored keep their CPU representation end to end).
"""

from __future__ import annotations

from ..ir import (
    Argument,
    DominatorTree,
    Function,
    Instruction,
    find_loops,
)
from ..ir.intrinsics import SVM_TO_GPU


def optimize_pointer_translations(function: Function) -> bool:
    if not function.blocks:
        return False
    changed = False
    changed = _commute_through_geps(function) or changed
    changed = _unify_at_definitions(function) or changed
    changed = _sink_translations(function) or changed
    return changed


def _translation_sites(function: Function) -> list[Instruction]:
    return [
        instr
        for instr in function.instructions()
        if instr.op == "call" and instr.callee is SVM_TO_GPU
    ]


def _commute_through_geps(function: Function) -> bool:
    changed = False
    work = True
    while work:
        work = False
        for site in _translation_sites(function):
            source = site.operands[0]
            if not isinstance(source, Instruction) or source.op != "gep":
                continue
            block = site.block
            index = block.instructions.index(site)
            base = source.operands[0]
            translated_base = Instruction(
                "call", base.type, [base], name="gpu_base_ptr"
            )
            translated_base.callee = SVM_TO_GPU
            translated_base.loc = site.loc
            block.insert(index, translated_base)
            gpu_gep = Instruction(
                "gep",
                site.type,
                [translated_base, *source.operands[1:]],
                name=f"{source.name or 'gep'}.gpu",
            )
            gpu_gep.gep_offset = source.gep_offset
            gpu_gep.gep_scales = list(source.gep_scales)
            gpu_gep.loc = source.loc
            block.insert(index + 1, gpu_gep)
            for instr in function.instructions():
                instr.replace_uses_of(site, gpu_gep)
            block.remove(site)
            changed = True
            work = True
            break
    return changed


def _unify_at_definitions(function: Function) -> bool:
    sites = _translation_sites(function)
    if not sites:
        return False
    by_source: dict[int, list[Instruction]] = {}
    source_of: dict[int, object] = {}
    for site in sites:
        source = site.operands[0]
        key = id(source)
        by_source.setdefault(key, []).append(site)
        source_of[key] = source

    changed = False
    domtree = DominatorTree(function)
    for key, group in by_source.items():
        source = source_of[key]
        canonical = _place_eager_translation(function, domtree, source, group)
        if canonical is None:
            continue
        for site in group:
            if site is canonical or site.block is None:
                continue
            for instr in function.instructions():
                instr.replace_uses_of(site, canonical)
            site.block.remove(site)
            changed = True
    return changed


def _place_eager_translation(function, domtree, source, group):
    """Move/create a single translation right after ``source``'s def."""
    if isinstance(source, Argument):
        target_block = function.entry
        insert_index = target_block.first_non_phi_index()
    elif isinstance(source, Instruction):
        if source.op == "phi":
            target_block = source.block
            insert_index = target_block.first_non_phi_index()
        elif source.block is not None:
            target_block = source.block
            insert_index = target_block.instructions.index(source) + 1
        else:
            return None
    else:
        # Constants/globals: translation folds at codegen; just dedupe to
        # the first site.
        return group[0]
    canonical = group[0]
    if canonical.block is target_block and (
        target_block.instructions.index(canonical) == insert_index
    ):
        return canonical
    canonical.block.remove(canonical)
    target_block.insert(insert_index, canonical)
    return canonical


def _sink_translations(function: Function) -> bool:
    """Move a translation down into the unique block of its uses, unless
    that block sits in a deeper loop (which would add dynamic work)."""
    loops = find_loops(function)
    depth: dict = {}
    for loop in loops:
        for block in loop.ordered():
            depth[block] = max(depth.get(block, 0), loop.depth)

    uses: dict[int, list[Instruction]] = {}
    for instr in function.instructions():
        for operand in instr.operands:
            if isinstance(operand, Instruction):
                uses.setdefault(operand.uid, []).append(instr)

    changed = False
    for site in _translation_sites(function):
        site_uses = uses.get(site.uid, [])
        if not site_uses:
            continue
        use_blocks = {u.block for u in site_uses if u.block is not None}
        if len(use_blocks) != 1:
            continue
        target = next(iter(use_blocks))
        if target is site.block:
            continue
        if any(u.op == "phi" for u in site_uses):
            continue
        if depth.get(target, 0) > depth.get(site.block, 0):
            continue
        first_use_index = min(
            target.instructions.index(u) for u in site_uses
        )
        if first_use_index <= target.first_non_phi_index() - 1:
            continue
        site.block.remove(site)
        target.insert(max(first_use_index, target.first_non_phi_index()), site)
        changed = True
    return changed
