"""Async task-graph runtime: inter-construct overlap over declared regions.

The paper's Concord model runs each parallel construct to completion
before the host proceeds; the runtime's ``parallel_for_hetero`` /
``parallel_reduce_hetero`` mirror that.  Heteroflow and StarPU (see
PAPERS.md) both show that expressing work as a *dependency graph* over
declared data accesses unlocks CPU+GPU overlap that per-construct
scheduling cannot reach.  This module adds that layer on top of the
existing scheduler:

* :meth:`ConcordRuntime.submit` enqueues one construct with declared
  region read/write sets and returns a :class:`ConstructFuture`;
  :meth:`ConstructFuture.result` / :meth:`ConcordRuntime.wait` force
  completion.
* Dependencies are *inferred* from the declared sets: a later construct
  gets a RAW edge to any earlier construct whose writes overlap its
  reads, a WAW edge on write/write overlap and a WAR edge on read/write
  overlap.  Omitted sets fall back to a conservative whole-region
  access, which serializes the construct against everything pending —
  exactly the synchronous semantics.
* Functional execution is deterministic: deferred constructs run in
  submission order (always a valid topological order — edges only point
  backward), each dispatched through the existing ``repro.sched``
  policies.  Region bytes and traces are therefore bit-identical to
  synchronous submission.
* *Modeled time* overlaps: the graph keeps one virtual clock per device
  (plus a host JIT lane).  A construct's virtual start is the latest of
  its dependencies' finishes, the clocks of the devices it occupies and
  — for GPU work — its kernel's compile-ahead finish; wall time is the
  max of the final clocks, not the sum of per-construct walls.
  Independent constructs placed on different devices (or the CPU/GPU
  halves of hybrid constructs) genuinely overlap.
* JIT **compile-ahead**: submitting a construct immediately queues its
  kernel on the host JIT lane (the ``(program_id, kernel_name)``
  gpu_function_t cache), so by the time its dependencies finish the
  binary is usually ready and the sync-mode JIT stall disappears.

Placement is ``"policy"`` by default — every construct dispatches
through the runtime's configured scheduler policy, exactly like a
synchronous call, which is what makes graph mode bit-identical.  The
opt-in ``"ect"`` placement instead picks, per ready construct, the
single-device policy (``cpu`` or ``gpu``) with the earliest estimated
completion given the current clocks and the scheduler's throughput
history — whole independent constructs then land on different devices
and overlap.  See ``docs/GRAPH.md``.
"""

from __future__ import annotations

import warnings
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ConstructFuture",
    "DeclaredSetViolation",
    "GraphError",
    "GraphStats",
    "RegionSpan",
    "TaskGraph",
    "as_span",
]

#: Graph placement modes (see module docstring).
PLACEMENTS = ("policy", "ect")

#: Dependency edge kinds, in reporting order.
EDGE_KINDS = ("raw", "war", "waw")


class GraphError(RuntimeError):
    """Misuse of the task-graph API (bad spans, non-topological orders,
    unknown placement)."""


class DeclaredSetViolation(GraphError):
    """A kernel touched shared-region bytes outside its construct's
    declared read/write spans (``declared_check="trap"``)."""


#: At most this many violations are reported in detail per construct
#: (events/warnings); the ``graph.declared_violations`` counter always
#: carries the full count.
MAX_VIOLATION_DETAILS = 16


@dataclass(frozen=True)
class RegionSpan:
    """A half-open byte range ``[addr, addr + size)`` of the shared
    region, the unit of declared read/write sets."""

    addr: int
    size: int

    def overlaps(self, other: "RegionSpan") -> bool:
        return (
            self.size > 0
            and other.size > 0
            and self.addr < other.addr + other.size
            and other.addr < self.addr + self.size
        )


def as_span(obj) -> RegionSpan:
    """Normalize one declared region: an :class:`~repro.svm.ArrayView`,
    :class:`~repro.svm.StructView`, ``RegionSpan`` or ``(addr, size)``
    tuple."""
    if isinstance(obj, RegionSpan):
        return obj
    addr = getattr(obj, "addr", None)
    if addr is not None:
        element = getattr(obj, "element", None)
        if element is not None:  # ArrayView
            return RegionSpan(addr, element.size() * obj.count)
        struct = getattr(obj, "struct_type", None)
        if struct is not None:  # StructView
            return RegionSpan(addr, struct.size())
    if isinstance(obj, tuple) and len(obj) == 2:
        addr, size = obj
        if isinstance(addr, int) and isinstance(size, int) and size >= 0:
            return RegionSpan(addr, size)
    raise GraphError(
        f"cannot interpret {obj!r} as a region span; pass an ArrayView, "
        "StructView, RegionSpan or (addr, size) tuple"
    )


def _overlap_any(a: tuple, b: tuple) -> bool:
    for x in a:
        for y in b:
            if x.overlaps(y):
                return True
    return False


def _merge_intervals(spans) -> tuple:
    """Sorted, coalesced ``(starts, ends)`` arrays for binary-search
    containment tests over a declared span set."""
    intervals = sorted(
        (span.addr, span.addr + span.size) for span in spans if span.size > 0
    )
    starts: list[int] = []
    ends: list[int] = []
    for start, end in intervals:
        if ends and start <= ends[-1]:
            if end > ends[-1]:
                ends[-1] = end
        else:
            starts.append(start)
            ends.append(end)
    return starts, ends


def _contains(starts: list, ends: list, addr: int, size: int) -> bool:
    index = bisect_right(starts, addr) - 1
    return index >= 0 and addr + size <= ends[index]


def _iter_access_events(trace):
    """``(address, size, is_store)`` rows of one trace, whichever
    representation it holds (columnar or object list)."""
    events = trace.mem_events
    data = getattr(events, "data", None)
    if data is not None:  # MemEventColumns
        for i in range(0, len(data), 5):
            yield data[i + 2], data[i + 3], data[i + 4]
    else:
        for event in events:
            yield event.address, event.size, event.is_store


@dataclass
class ConstructFuture:
    """One submitted construct: its declared accesses, inferred
    dependencies, and — once forced — its report and virtual schedule."""

    index: int
    kernel: str
    construct: str  # "for" | "reduce"
    n: int
    reads: tuple = ()
    writes: tuple = ()
    conservative: bool = False
    #: indices of constructs this one must wait for, by edge kind
    edges: dict = field(default_factory=dict)
    wave: int = 0
    #: virtual schedule, filled at execution: device -> seconds
    start: float = 0.0
    finish: dict = field(default_factory=dict)
    report: object = None
    _graph: object = None
    _body: object = None
    _kinfo: object = None
    _on_cpu: bool = False
    _policy: Optional[str] = None

    @property
    def deps(self) -> tuple:
        """All dependency indices, deduplicated, ascending."""
        seen: set = set()
        for kind in EDGE_KINDS:
            seen.update(self.edges.get(kind, ()))
        return tuple(sorted(seen))

    @property
    def done(self) -> bool:
        return self.report is not None

    @property
    def finish_seconds(self) -> float:
        """Virtual completion time (the construct is done when its last
        device part finishes)."""
        if not self.finish:
            return self.start
        return max(self.finish.values())

    def result(self):
        """Force this construct (and, transitively, its dependencies) and
        return its :class:`~repro.runtime.runtime.ExecutionReport`."""
        if self.report is None:
            self._graph.force(self.index)
        return self.report


@dataclass
class GraphStats:
    """One snapshot of the graph's accounting (see :meth:`TaskGraph.stats`)."""

    constructs: int = 0
    executed: int = 0
    edges: dict = field(default_factory=lambda: {k: 0 for k in EDGE_KINDS})
    conservative: int = 0
    waves: int = 0
    wall_seconds: float = 0.0
    sync_seconds: float = 0.0
    device_busy: dict = field(default_factory=dict)
    jit_ahead_seconds: float = 0.0

    @property
    def overlap_savings(self) -> float:
        """Virtual seconds hidden by inter-construct overlap (sync-mode
        serial wall minus graph wall)."""
        return max(0.0, self.sync_seconds - self.wall_seconds)

    @property
    def speedup(self) -> float:
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.sync_seconds / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "constructs": self.constructs,
            "executed": self.executed,
            "edges": dict(self.edges),
            "conservative": self.conservative,
            "waves": self.waves,
            "wall_seconds": self.wall_seconds,
            "sync_seconds": self.sync_seconds,
            "overlap_savings": self.overlap_savings,
            "speedup": self.speedup,
            "device_busy": dict(self.device_busy),
            "jit_ahead_seconds": self.jit_ahead_seconds,
        }


class TaskGraph:
    """The per-runtime task graph executor (see module docstring).

    Owned lazily by :class:`~repro.runtime.runtime.ConcordRuntime`
    (``rt.task_graph``); most callers go through ``rt.submit`` /
    ``rt.wait``.
    """

    def __init__(self, rt, placement: str = "policy"):
        if placement not in PLACEMENTS:
            raise GraphError(
                f"unknown graph placement {placement!r}; choose from "
                f"{PLACEMENTS}"
            )
        self.rt = rt
        self.placement = placement
        self.futures: list[ConstructFuture] = []
        #: per-device virtual clocks (seconds); the wall time is their max
        self.clocks: dict[str, float] = {"gpu": 0.0, "cpu": 0.0}
        #: host JIT lane: one compile at a time, queued at submission
        self.jit_clock = 0.0
        #: (program_id, kernel) -> compile-ahead finish time
        self._jit_ready: dict = {}
        self._sync_seconds = 0.0
        self._jit_ahead = 0.0
        #: futures already folded into graph_wave spans by a wait()
        self._reported = 0

    # -- plumbing ----------------------------------------------------------

    @property
    def _counters(self):
        obs = self.rt.obs
        return obs.counters if obs is not None else None

    def _whole_region(self) -> tuple:
        region = self.rt.region
        return (RegionSpan(region.cpu_base, region.size),)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        n: int,
        body,
        construct: str = "for",
        reads=None,
        writes=None,
        on_cpu: bool = False,
        policy: Optional[str] = None,
    ) -> ConstructFuture:
        """Enqueue one construct; execution is deferred until forced by
        :meth:`ConstructFuture.result`, :meth:`wait` or :meth:`barrier`.

        ``reads``/``writes`` declare the region byte ranges the kernel
        may access (ArrayView/StructView/``(addr, size)``).  When either
        set is omitted the construct conservatively reads *and* writes
        the whole region, serializing it against everything pending.
        """
        rt = self.rt
        if construct not in ("for", "reduce"):
            raise GraphError(
                f"unknown construct {construct!r} (expected 'for' or 'reduce')"
            )
        kinfo = rt._kernel_of(body)
        if construct == "reduce" and kinfo.construct != "reduce":
            raise TypeError(
                f"{kinfo.body_class.name} has no join method; submit with "
                "construct='for'"
            )
        conservative = reads is None or writes is None
        if conservative:
            read_spans = write_spans = self._whole_region()
        else:
            read_spans = tuple(as_span(obj) for obj in reads)
            write_spans = tuple(as_span(obj) for obj in writes)
        # The body struct itself is always read (the kernel loads its
        # fields); fold it into the read set so sibling constructs that
        # *write* the body serialize correctly.
        if not conservative:
            read_spans = read_spans + (as_span(body),)
        future = ConstructFuture(
            index=len(self.futures),
            kernel=kinfo.gpu_kernel.name,
            construct=construct,
            n=n,
            reads=read_spans,
            writes=write_spans,
            conservative=conservative,
            _graph=self,
            _body=body,
            _kinfo=kinfo,
            _on_cpu=on_cpu,
            _policy=policy,
        )
        self._infer_edges(future)
        future.wave = (
            0
            if not future.deps
            else 1 + max(self.futures[d].wave for d in future.deps)
        )
        self.futures.append(future)
        self._compile_ahead(kinfo)
        counters = self._counters
        if counters is not None:
            counters.add("graph.submitted")
            if conservative:
                counters.add("graph.conservative")
            for kind in EDGE_KINDS:
                count = len(future.edges.get(kind, ()))
                if count:
                    counters.add(f"graph.edges.{kind}", count)
        return future

    def _infer_edges(self, future: ConstructFuture) -> None:
        """RAW/WAR/WAW edges against every earlier construct whose
        declared sets overlap this one's."""
        edges: dict = {kind: [] for kind in EDGE_KINDS}
        for prev in self.futures:
            if _overlap_any(prev.writes, future.reads):
                edges["raw"].append(prev.index)
            if _overlap_any(prev.reads, future.writes):
                edges["war"].append(prev.index)
            if _overlap_any(prev.writes, future.writes):
                edges["waw"].append(prev.index)
        future.edges = {
            kind: tuple(indices) for kind, indices in edges.items() if indices
        }

    def _compile_ahead(self, kinfo) -> None:
        """Queue the kernel's vendor JIT on the host lane at submission
        time, so it overlaps earlier constructs' execution instead of
        stalling this one's launch (Heteroflow's compile-ahead)."""
        rt = self.rt
        if kinfo.cpu_only:
            return
        key = (rt.program.program_id, kinfo.gpu_kernel.name)
        if key in self._jit_ready:
            return
        gpu = rt.backends["gpu"]
        preview = gpu.jit_preview(kinfo)
        self.jit_clock += preview
        self._jit_ready[key] = self.jit_clock

    # -- forcing -----------------------------------------------------------

    def force(self, index: int) -> None:
        """Execute the construct at ``index`` (after its transitive
        dependencies, in submission order among them)."""
        future = self.futures[index]
        if future.done:
            return
        # Iterative dependency closure — conservative chains can be long.
        pending: list[int] = []
        stack = [index]
        seen: set = set()
        while stack:
            i = stack.pop()
            if i in seen or self.futures[i].done:
                continue
            seen.add(i)
            pending.append(i)
            stack.extend(self.futures[i].deps)
        for i in sorted(pending):
            self._execute(self.futures[i])

    def _placement_policy(self, future: ConstructFuture, ready: float):
        """Which policy dispatches this construct (see module docstring)."""
        if self.placement == "policy" or future._on_cpu:
            return future._policy
        if future._policy is not None:
            return future._policy  # explicit per-submit override wins
        if future._kinfo.cpu_only or future.construct == "reduce":
            # Reductions lay scratch out per-device; keep them on the
            # paper path rather than letting ECT flip their layout.
            return None
        sched = self.rt.scheduler
        key = sched.key_of(future._kinfo)
        tg = sched.throughput(key, "gpu")
        if tg is None:
            return "gpu"  # calibrate the paper's default device first
        tc = sched.throughput(key, "cpu")
        if tc is None:
            from ..sched.scheduler import PRIOR_CPU_SLOWDOWN

            tc = tg / PRIOR_CPU_SLOWDOWN
        jit_key = (self.rt.program.program_id, future.kernel)
        jit_ready = self._jit_ready.get(jit_key, 0.0)
        gpu_finish = max(ready, self.clocks["gpu"], jit_ready) + future.n / tg
        cpu_finish = max(ready, self.clocks["cpu"]) + future.n / tc
        return "cpu" if cpu_finish < gpu_finish else "gpu"

    def _execute(self, future: ConstructFuture) -> None:
        rt = self.rt
        ready = 0.0
        for dep in future.deps:
            ready = max(ready, self.futures[dep].finish_seconds)
        policy = self._placement_policy(future, ready)
        # Declared-set runtime validation: retain this construct's traces
        # and check every recorded access against the declared spans.
        # Reduce constructs are exempt when declared non-conservatively —
        # their lanes write runtime-managed scratch copies the caller
        # cannot declare; device-heap programs likewise allocate outside
        # any declarable span.
        checking = (
            rt.declared_check != "off"
            and rt.collect_mem_events
            and (future.construct == "for" or future.conservative)
            and not rt.program.config.device_alloc
        )
        if checking:
            kept_before = len(rt.trace_log)
            keep_traces_before = rt.keep_traces
            rt.keep_traces = True
            try:
                report = rt.scheduler.run(
                    future._kinfo,
                    future.n,
                    future._body,
                    future.construct,
                    on_cpu=future._on_cpu,
                    policy=policy,
                )
            finally:
                rt.keep_traces = keep_traces_before
            fresh_traces = rt.trace_log[kept_before:]
            if not keep_traces_before:
                del rt.trace_log[kept_before:]
            self._check_declared(future, fresh_traces)
        else:
            report = rt.scheduler.run(
                future._kinfo,
                future.n,
                future._body,
                future.construct,
                on_cpu=future._on_cpu,
                policy=policy,
            )
        future.report = report
        busy = report.per_device_seconds()
        start = ready
        for device in busy:
            start = max(start, self.clocks.get(device, 0.0))
        jit_key = (rt.program.program_id, future.kernel)
        jit_ready = self._jit_ready.get(jit_key, 0.0)
        start_without_jit = start
        if "gpu" in busy:
            start = max(start, jit_ready)
        future.start = start
        for device, seconds in busy.items():
            finish = start + seconds
            future.finish[device] = finish
            self.clocks[device] = max(self.clocks.get(device, 0.0), finish)
        self._sync_seconds += report.seconds
        if report.jit_seconds > 0.0:
            exposed = max(0.0, jit_ready - start_without_jit)
            self._jit_ahead += max(0.0, report.jit_seconds - exposed)
        counters = self._counters
        if counters is not None:
            counters.add("graph.executed")
            counters.add("graph.wave_depth", 0)  # ensure series exists
        # Release construction-only references; the report stays.
        future._body = None
        future._kinfo = None

    def _check_declared(self, future: ConstructFuture, traces) -> None:
        """Validate every recorded shared-region access of one executed
        construct against its declared spans: loads must fall inside
        ``reads ∪ writes``, stores inside ``writes``.  Mem events carry
        canonical CPU addresses on both devices and skip the private
        window, so the check is engine- and placement-independent."""
        rt = self.rt
        read_starts, read_ends = _merge_intervals(future.reads + future.writes)
        write_starts, write_ends = _merge_intervals(future.writes)
        total = 0
        details: list[dict] = []
        for trace in traces:
            for address, size, is_store in _iter_access_events(trace):
                if is_store:
                    ok = _contains(write_starts, write_ends, address, size)
                else:
                    ok = _contains(read_starts, read_ends, address, size)
                if ok:
                    continue
                total += 1
                if len(details) < MAX_VIOLATION_DETAILS:
                    details.append(
                        {
                            "access": "store" if is_store else "load",
                            "address": int(address),
                            "size": int(size),
                        }
                    )
        if not total:
            return
        obs = rt.obs
        if obs is not None:
            obs.counters.add("graph.declared_violations", total)
            telemetry = obs.telemetry
            if telemetry is not None:
                for detail in details:
                    telemetry.emit(
                        "violation",
                        future.kernel,
                        construct_index=future.index,
                        **detail,
                    )
        first = details[0]
        message = (
            f"construct #{future.index} ({future.kernel}) touched "
            f"{total} byte range(s) outside its declared sets; first: "
            f"{first['access']} of {first['size']} byte(s) at "
            f"0x{first['address']:x}"
        )
        if rt.declared_check == "trap":
            error = DeclaredSetViolation(message)
            error.trap_kernel = future.kernel
            error.trap_violations = details
            raise error
        warnings.warn(message, stacklevel=3)

    # -- synchronization ---------------------------------------------------

    def barrier(self, regions=None) -> None:
        """Force every pending construct whose declared accesses overlap
        ``regions`` (everything, when omitted) — the host-side read
        barrier for deferred submissions."""
        if regions is None:
            for future in self.futures:
                if not future.done:
                    self._execute(future)
            return
        spans = tuple(as_span(obj) for obj in regions)
        for future in self.futures:
            if future.done:
                continue
            if _overlap_any(future.writes, spans) or _overlap_any(
                future.reads, spans
            ):
                self.force(future.index)

    def wait(self) -> GraphStats:
        """Force every pending construct, emit the ``graph_wave`` spans
        and counters for newly finished work, and return the graph's
        accounting snapshot."""
        self.barrier()
        stats = self.stats()
        fresh = self.futures[self._reported :]
        self._reported = len(self.futures)
        obs = self.rt.obs
        if obs is not None and fresh:
            counters = obs.counters
            waves: dict[int, list] = {}
            for future in fresh:
                waves.setdefault(future.wave, []).append(future)
            counters.add("graph.waves", len(waves))
            counters.add("graph.jit_ahead_seconds", stats.jit_ahead_seconds)
            for wave_index in sorted(waves):
                members = waves[wave_index]
                wave_start = min(m.start for m in members)
                wave_finish = max(m.finish_seconds for m in members)
                with obs.span(
                    "graph_wave",
                    "graph_wave",
                    wave=wave_index,
                    constructs=len(members),
                    virtual_start=wave_start,
                    virtual_finish=wave_finish,
                ) as wspan:
                    wspan.sim_seconds = wave_finish - wave_start
                    for member in members:
                        for device, finish in sorted(member.finish.items()):
                            with obs.span(
                                f"graph:{member.kernel}",
                                "graph_construct",
                                index=member.index,
                                device=device,
                                wave=wave_index,
                                n=member.n,
                                virtual_start=member.start,
                                virtual_finish=finish,
                            ) as cspan:
                                cspan.sim_seconds = finish - member.start
        return stats

    # -- reporting ---------------------------------------------------------

    def stats(self) -> GraphStats:
        executed = [f for f in self.futures if f.done]
        edges = {kind: 0 for kind in EDGE_KINDS}
        for future in self.futures:
            for kind in EDGE_KINDS:
                edges[kind] += len(future.edges.get(kind, ()))
        busy: dict[str, float] = {}
        for future in executed:
            for device, finish in future.finish.items():
                busy[device] = busy.get(device, 0.0) + (finish - future.start)
        return GraphStats(
            constructs=len(self.futures),
            executed=len(executed),
            edges=edges,
            conservative=sum(1 for f in self.futures if f.conservative),
            waves=1 + max((f.wave for f in self.futures), default=-1),
            wall_seconds=max(
                (f.finish_seconds for f in executed), default=0.0
            ),
            sync_seconds=self._sync_seconds,
            device_busy=busy,
            jit_ahead_seconds=self._jit_ahead,
        )
