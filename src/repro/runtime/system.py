"""The two evaluation systems of the paper (section 5.1)."""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.device import CpuDevice, i7_4650u, i7_4770
from ..gpu.device import GpuDevice, hd4600, hd5000


@dataclass(frozen=True)
class System:
    name: str
    cpu: CpuDevice
    gpu: GpuDevice
    tdp_watts: float


def ultrabook() -> System:
    """1.7 GHz dual-core i7-4650U Ultrabook with HD Graphics 5000, 15 W."""
    return System(name="Ultrabook", cpu=i7_4650u(), gpu=hd5000(), tdp_watts=15.0)


def desktop() -> System:
    """3.4 GHz quad-core i7-4770 desktop with HD Graphics 4600, 84 W."""
    return System(name="Desktop", cpu=i7_4770(), gpu=hd4600(), tdp_watts=84.0)


ALL_SYSTEMS = (ultrabook, desktop)
