"""Concord runtime: compiler driver, offload, parallel constructs."""

from ..passes import OptConfig
from .compiler import CompiledProgram, ConcordWarning, KernelInfo, compile_source
from .graph import ConstructFuture, GraphError, GraphStats, RegionSpan, TaskGraph
from .runtime import ConcordRuntime, ExecutionReport
from .system import System, desktop, ultrabook

__all__ = [
    "CompiledProgram",
    "ConcordRuntime",
    "ConcordWarning",
    "ConstructFuture",
    "ExecutionReport",
    "GraphError",
    "GraphStats",
    "KernelInfo",
    "OptConfig",
    "RegionSpan",
    "System",
    "TaskGraph",
    "compile_source",
    "desktop",
    "ultrabook",
]
