"""Concord runtime: compiler driver, offload, parallel constructs."""

from ..passes import OptConfig
from .compiler import CompiledProgram, ConcordWarning, KernelInfo, compile_source
from .runtime import ConcordRuntime, ExecutionReport
from .system import System, desktop, ultrabook

__all__ = [
    "CompiledProgram",
    "ConcordRuntime",
    "ConcordWarning",
    "ExecutionReport",
    "KernelInfo",
    "OptConfig",
    "System",
    "compile_source",
    "desktop",
    "ultrabook",
]
