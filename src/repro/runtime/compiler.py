"""The static Concord compiler driver (paper Figure 2, left column).

``compile_source`` runs the full pipeline:

1. parse MiniC++ and run semantic analysis;
2. lower to IR (CLANG/LLVM stand-in);
3. discover heterogeneous loop-body classes — any class with
   ``operator()(int)`` is offloadable; a ``join(Body&)`` method makes it a
   reduction body;
4. generate a kernel wrapper per body class (the ``__kernel`` entry that
   fetches ``get_global_id(0)`` and invokes the body), plus a join wrapper
   for reductions;
5. run the standard optimization pipeline on everything, then the
   device-lowering pipeline (devirt, SVM, PTROPT/L3OPT per config) on each
   kernel;
6. run the restriction checker; flagged kernels are marked CPU-only with a
   compile-time warning, exactly as the paper describes;
7. emit OpenCL C text for each kernel and embed it in the returned
   :class:`CompiledProgram` (the "executable: IA binary + OpenCL").
"""

from __future__ import annotations

import itertools
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

from .. import ir
from ..ir import Function, FunctionType, IRBuilder, Module
from ..ir.intrinsics import GPU_GLOBAL_ID
from ..ir.types import I32, PointerType, VOID, ptr
from ..minicpp import Sema, UnitLowerer, check_kernel, parse
from ..minicpp.sema import ClassInfo
from ..passes import OptConfig, PassManager, kernel_pipeline, standard_pipeline


class ConcordWarning(UserWarning):
    """Compile-time warning for restriction violations (paper section 2.1)."""


@dataclass
class KernelInfo:
    """One offloadable loop body: its kernel entry and metadata."""

    body_class: ClassInfo
    kernel: Function  # CPU-form kernel (per-iteration entry, pre device lowering)
    gpu_kernel: Function  # device-lowered kernel (SVM translations etc.)
    join_kernel: Optional[Function] = None  # reductions only
    construct: str = "for"  # 'for' | 'reduce'
    cpu_only: bool = False
    violations: list = field(default_factory=list)
    opencl_source: str = ""
    #: section 3.3 wrapper (reductions only): private copies + local-memory
    #: tree reduction
    reduce_wrapper_source: str = ""


@dataclass
class CompiledProgram:
    """The 'executable' the static compiler produces: IR for the CPU plus
    embedded OpenCL (here: device-lowered IR + OpenCL C text) for the GPU."""

    module: Module
    sema: Sema
    kernels: dict[str, KernelInfo]
    config: OptConfig
    source: str
    #: Process-unique id.  The runtime's gpu_function_t cache is keyed by
    #: ``(program_id, kernel_name)``: kernel names repeat across programs
    #: (every workload calls its body ``operator()``), so the id keeps two
    #: programs' JIT entries from colliding.
    program_id: int = field(default_factory=itertools.count().__next__)

    def kernel_for(self, class_name: str) -> KernelInfo:
        if class_name not in self.kernels:
            raise KeyError(
                f"no heterogeneous body class {class_name!r}; "
                f"available: {sorted(self.kernels)}"
            )
        return self.kernels[class_name]

    def class_info(self, class_name: str) -> ClassInfo:
        info = self.sema.lookup_class(class_name)
        if info is None:
            raise KeyError(f"unknown class {class_name}")
        return info


def compile_source(
    source: str,
    config: Optional[OptConfig] = None,
    module_name: str = "concord",
    observer=None,
) -> CompiledProgram:
    """Compile MiniC++ source into a :class:`CompiledProgram`.

    ``observer`` (a ``repro.obs.Observer``) is optional: when attached, the
    driver brackets the frontend, the standard pipeline and the per-kernel
    device lowering (including the SVM-lowering step) in phase spans and
    records pass statistics into the observer.  Without one, compilation
    runs the exact pre-observability code paths.
    """
    config = config or OptConfig.gpu_all()

    def span(name, **attrs):
        if observer is None:
            return nullcontext()
        return observer.span(name, "compile", **attrs)

    manager = PassManager(verify=config.verify) if observer is not None else None
    with span("compile", module=module_name):
        with span("frontend"):
            unit = parse(source)
            sema = Sema(unit)
            lowerer = UnitLowerer(sema, ir.Module(module_name))
            module = lowerer.lower_unit()
            # The line profiler resolves instruction locs back to source
            # text through the module (repro.obs.lines).
            module.source_text = source

        kernels: dict[str, KernelInfo] = {}
        for info in list(sema.classes.values()):
            body_ops = [
                m
                for m in info.methods.get("operator()", ())
                if len(m.decl.params) == 1
            ]
            if not body_ops or body_ops[0].ir_function is None:
                continue
            operator = body_ops[0]
            joins = [
                m for m in info.methods.get("join", ()) if len(m.decl.params) == 1
            ]
            construct = "reduce" if joins else "for"
            kernel = _make_kernel_wrapper(module, info, operator.ir_function)
            join_kernel = None
            if joins and joins[0].ir_function is not None:
                join_kernel = _make_join_wrapper(module, info, joins[0].ir_function)
            kernels[info.name] = KernelInfo(
                body_class=info,
                kernel=kernel,
                gpu_kernel=kernel,  # replaced below after device lowering
                join_kernel=join_kernel,
                construct=construct,
            )

        # Standard pipeline over every function with a body.
        with span("standard_pipeline"):
            for function in list(module.functions.values()):
                if function.blocks:
                    standard_pipeline(module, function, config, manager=manager)

        # Device lowering per kernel (on a clone, so the CPU path keeps
        # untranslated IR — the CPU dereferences CPU pointers natively).
        from .clone import clone_function

        for kinfo in kernels.values():
            with span("device_lower", kernel=kinfo.kernel.name):
                kinfo.violations = check_kernel(module, kinfo.kernel)
                if config.device_alloc:
                    # Extension (paper future work): device-side allocation
                    # is supported through the bump allocator, so it is no
                    # longer a restriction.
                    kinfo.violations = [
                        v for v in kinfo.violations if v.kind != "gpu-allocation"
                    ]
                if kinfo.violations:
                    kinfo.cpu_only = True
                    details = "; ".join(str(v) for v in kinfo.violations)
                    warnings.warn(
                        f"Concord: {kinfo.body_class.name} cannot run on the GPU "
                        f"({details}); falling back to CPU execution",
                        ConcordWarning,
                        stacklevel=2,
                    )
                    continue
                gpu_kernel = clone_function(
                    module, kinfo.kernel, kinfo.kernel.name + ".gpu"
                )
                kernel_pipeline(
                    module, gpu_kernel, config, manager=manager, observer=observer
                )
                kinfo.gpu_kernel = gpu_kernel
                from ..codegen.opencl import emit_kernel_opencl

                kinfo.opencl_source = emit_kernel_opencl(module, gpu_kernel)
                if kinfo.join_kernel is not None:
                    gpu_join = clone_function(
                        module, kinfo.join_kernel, kinfo.join_kernel.name + ".gpu"
                    )
                    kernel_pipeline(
                        module, gpu_join, config, manager=manager, observer=observer
                    )
                    kinfo.gpu_join_kernel = gpu_join
                    from ..codegen.opencl import emit_reduce_wrapper_opencl
                    from .runtime import REDUCTION_GROUP_SIZE

                    kinfo.reduce_wrapper_source = emit_reduce_wrapper_opencl(
                        module,
                        kinfo.body_class.struct_type.name,
                        kinfo.body_class.struct_type.size(),
                        gpu_kernel,
                        gpu_join,
                        group_size=REDUCTION_GROUP_SIZE,
                    )
                else:
                    kinfo.gpu_join_kernel = None

    if observer is not None:
        observer.record_pass_stats(manager.stats.values())
    return CompiledProgram(
        module=module, sema=sema, kernels=kernels, config=config, source=source
    )


def _first_loc(function: Function):
    """First source location in ``function``, for stamping synthesized
    calls to it (the wrapper has no source line of its own)."""
    for block in function.blocks:
        for instr in block.instructions:
            if instr.loc is not None:
                return instr.loc
    return None


def _make_kernel_wrapper(module: Module, info: ClassInfo, operator_fn: Function) -> Function:
    """``void kernel.<Class>(Class* body, int i)`` calling operator()."""
    name = f"kernel.{info.struct_type.name}"
    ftype = FunctionType(VOID, (ptr(info.struct_type), I32))
    kernel = Function(name, ftype, ["body", "i"])
    kernel.attributes["kernel"] = True
    kernel.attributes["body_class"] = info.name
    kernel.attributes["source_locs"] = True
    module.add_function(kernel)
    entry = kernel.new_block("entry")
    builder = IRBuilder(entry)
    # The index argument *is* get_global_id(0) on the device; the runtime
    # passes the iteration index explicitly so the same wrapper runs on the
    # CPU.  The L3OPT pass uses the gpu.global_id intrinsic, which the
    # executor binds to the same value.
    call = builder.call(operator_fn, [kernel.args[0], kernel.args[1]])
    call.loc = _first_loc(operator_fn)
    builder.ret()
    return kernel


def _make_join_wrapper(module: Module, info: ClassInfo, join_fn: Function) -> Function:
    """``void join.<Class>(Class* into, Class* from)``."""
    name = f"join.{info.struct_type.name}"
    ftype = FunctionType(VOID, (ptr(info.struct_type), ptr(info.struct_type)))
    kernel = Function(name, ftype, ["into", "from"])
    kernel.attributes["kernel"] = True
    kernel.attributes["join_of"] = info.name
    kernel.attributes["source_locs"] = True
    module.add_function(kernel)
    entry = kernel.new_block("entry")
    builder = IRBuilder(entry)
    call = builder.call(join_fn, [kernel.args[0], kernel.args[1]])
    call.loc = _first_loc(join_fn)
    builder.ret()
    return kernel
