"""The static Concord compiler driver (paper Figure 2, left column).

Compilation is **staged** (see ``docs/SERVICE.md``): three explicit,
separately cacheable stages replace the old opaque monolith, each
producing an artifact stamped with a stable **content hash** of its
canonicalized inputs:

1. :func:`frontend_stage` — parse MiniC++, semantic analysis, lowering
   to IR (CLANG/LLVM stand-in), and discovery of heterogeneous loop-body
   classes (any class with ``operator()(int)`` is offloadable; a
   ``join(Body&)`` method makes it a reduction body) plus their kernel
   wrappers.  Hash of (canonical source, module name, version salt).
2. :func:`pipeline_stage` — the standard optimization pipeline over
   every function, then the device-lowering pipeline (devirt, SVM,
   PTROPT/L3OPT per config) on each kernel clone, plus the restriction
   checker (flagged kernels are marked CPU-only with a compile-time
   warning, exactly as the paper describes).  Hash of (frontend hash,
   canonical pass config, pass-registry composition).
3. :func:`closure_stage` — emit the executable closure: OpenCL C text
   per kernel (plus the section 3.3 reduce wrapper) embedded in the
   returned :class:`CompiledProgram` (the "executable: IA binary +
   OpenCL").  The program's ``program_id`` *is* this stage's hash.

:func:`compile_source` chains the three stages in memory and is
bit-identical to the pre-staged monolith.  :func:`compile_cached`
additionally consults an artifact store (``repro.service.ArtifactStore``
or anything with ``get``/``put``) at every stage, so a warm store skips
the frontend, the pipeline and the closure emission entirely —
the substrate of the persistent compile service (``python -m repro
serve``).

Because ``program_id`` is a content hash, it is stable across processes
and across recompiles of the same (source, options) pair, and two
different programs can never alias a ``(program_id, kernel_name)`` JIT
or vector-code cache entry — the old per-process ``itertools.count`` id
gave neither guarantee.
"""

from __future__ import annotations

import hashlib
import itertools
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

from .. import ir
from ..ir import Function, FunctionType, IRBuilder, Module
from ..ir.intrinsics import GPU_GLOBAL_ID
from ..ir.types import I32, PointerType, VOID, ptr
from ..minicpp import Sema, UnitLowerer, check_kernel, parse
from ..minicpp.sema import ClassInfo
from ..passes import OptConfig, PassManager, kernel_pipeline, standard_pipeline
from ..passes.pipeline import PASS_REGISTRY


class ConcordWarning(UserWarning):
    """Compile-time warning for restriction violations (paper section 2.1)."""


_ANON_IDS = itertools.count()


# -- content hashing ---------------------------------------------------------

#: Bumping this invalidates every stored artifact: the stage hashes fold
#: it in, so stores written by an incompatible compiler are simply never
#: hit (and eventually evicted), rather than deserialized wrongly.
COMPILE_SALT_VERSION = "repro-compile/v1"


def _compile_salt() -> str:
    from .. import __version__

    return f"{COMPILE_SALT_VERSION}:{__version__}"


def canonical_source(source: str) -> str:
    """The form of the source text that stage hashes see: line endings
    normalized so the same program written on different platforms hits
    the same artifacts."""
    return source.replace("\r\n", "\n").replace("\r", "\n")


def _hash(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        raw = part.encode("utf-8")
        # Length-prefix every field so ("ab","c") never collides with
        # ("a","bc").
        digest.update(str(len(raw)).encode("ascii"))
        digest.update(b":")
        digest.update(raw)
    return digest.hexdigest()


def frontend_key(source: str, module_name: str = "concord") -> str:
    """Content hash of the frontend stage's inputs."""
    return _hash("frontend", _compile_salt(), module_name, canonical_source(source))


def pipeline_key(frontend_hash: str, config: OptConfig) -> str:
    """Content hash of the pipeline stage: the frontend artifact it
    consumes, the canonical pass configuration, and the pass-registry
    composition (a renamed/added pass must miss old artifacts)."""
    return _hash(
        "pipeline",
        _compile_salt(),
        frontend_hash,
        config.cache_key(),
        ",".join(sorted(PASS_REGISTRY)),
    )


def program_key(pipeline_hash: str) -> str:
    """Content hash of the closure stage — the ``program_id`` of the
    resulting :class:`CompiledProgram`.  Folds in the reduction group
    size because the emitted reduce-wrapper OpenCL depends on it."""
    from .runtime import REDUCTION_GROUP_SIZE

    return _hash(
        "closure", _compile_salt(), pipeline_hash, str(REDUCTION_GROUP_SIZE)
    )


# -- artifacts ---------------------------------------------------------------


@dataclass
class KernelInfo:
    """One offloadable loop body: its kernel entry and metadata."""

    body_class: ClassInfo
    kernel: Function  # CPU-form kernel (per-iteration entry, pre device lowering)
    gpu_kernel: Function  # device-lowered kernel (SVM translations etc.)
    join_kernel: Optional[Function] = None  # reductions only
    construct: str = "for"  # 'for' | 'reduce'
    cpu_only: bool = False
    violations: list = field(default_factory=list)
    opencl_source: str = ""
    #: section 3.3 wrapper (reductions only): private copies + local-memory
    #: tree reduction
    reduce_wrapper_source: str = ""


@dataclass
class FrontendArtifact:
    """Stage 1 output: lowered module + semantic info + kernel wrappers,
    before any optimization.  ``key`` is :func:`frontend_key`."""

    key: str
    source: str
    module_name: str
    module: Module
    sema: Sema
    kernels: dict


@dataclass
class PipelineArtifact:
    """Stage 2 output: the fully optimized and device-lowered module.
    ``key`` is :func:`pipeline_key`; ``warnings`` carries the restriction
    messages so a store hit replays them faithfully."""

    key: str
    frontend_key: str
    config: OptConfig
    module: Module
    sema: Sema
    kernels: dict
    source: str
    warnings: list = field(default_factory=list)


@dataclass
class CompiledProgram:
    """The 'executable' the static compiler produces: IR for the CPU plus
    embedded OpenCL (here: device-lowered IR + OpenCL C text) for the GPU."""

    module: Module
    sema: Sema
    kernels: dict[str, KernelInfo]
    config: OptConfig
    source: str
    #: Content hash of (source, options, pass config, version salt) — the
    #: closure stage's hash.  The runtime's gpu_function_t cache and the
    #: vector-code memos are keyed by ``(program_id, kernel_name)``:
    #: kernel names repeat across programs (every workload calls its body
    #: ``operator()``), and the content hash keeps two *different*
    #: programs' entries from ever colliding while letting two compiles
    #: of the *same* (source, options) pair share process-wide caches —
    #: the id is stable across processes, unlike the per-process counter
    #: it replaced.  Direct constructions that bypass :func:`closure_stage`
    #: get a process-unique ``anon:<n>`` fallback so they still never alias.
    program_id: str = field(
        default_factory=lambda: f"anon:{next(_ANON_IDS)}"
    )

    def kernel_for(self, class_name: str) -> KernelInfo:
        if class_name not in self.kernels:
            raise KeyError(
                f"no heterogeneous body class {class_name!r}; "
                f"available: {sorted(self.kernels)}"
            )
        return self.kernels[class_name]

    def class_info(self, class_name: str) -> ClassInfo:
        info = self.sema.lookup_class(class_name)
        if info is None:
            raise KeyError(f"unknown class {class_name}")
        return info


def _span(observer, name, **attrs):
    if observer is None:
        return nullcontext()
    return observer.span(name, "compile", **attrs)


# -- stage 1: frontend ---------------------------------------------------------


def frontend_stage(
    source: str, module_name: str = "concord", observer=None
) -> FrontendArtifact:
    """Parse + semantic analysis + lowering + kernel-wrapper discovery."""
    with _span(observer, "frontend"):
        unit = parse(source)
        sema = Sema(unit)
        lowerer = UnitLowerer(sema, ir.Module(module_name))
        module = lowerer.lower_unit()
        # The line profiler resolves instruction locs back to source
        # text through the module (repro.obs.lines).
        module.source_text = source

    kernels: dict[str, KernelInfo] = {}
    for info in list(sema.classes.values()):
        body_ops = [
            m
            for m in info.methods.get("operator()", ())
            if len(m.decl.params) == 1
        ]
        if not body_ops or body_ops[0].ir_function is None:
            continue
        operator = body_ops[0]
        joins = [
            m for m in info.methods.get("join", ()) if len(m.decl.params) == 1
        ]
        construct = "reduce" if joins else "for"
        kernel = _make_kernel_wrapper(module, info, operator.ir_function)
        join_kernel = None
        if joins and joins[0].ir_function is not None:
            join_kernel = _make_join_wrapper(module, info, joins[0].ir_function)
        kernels[info.name] = KernelInfo(
            body_class=info,
            kernel=kernel,
            gpu_kernel=kernel,  # replaced after device lowering
            join_kernel=join_kernel,
            construct=construct,
        )
    return FrontendArtifact(
        key=frontend_key(source, module_name),
        source=source,
        module_name=module_name,
        module=module,
        sema=sema,
        kernels=kernels,
    )


# -- stage 2: optimization + device lowering -----------------------------------


def pipeline_stage(
    front: FrontendArtifact,
    config: Optional[OptConfig] = None,
    observer=None,
    manager: Optional[PassManager] = None,
) -> PipelineArtifact:
    """Standard pipeline over every function, then device lowering per
    kernel (on a clone, so the CPU path keeps untranslated IR — the CPU
    dereferences CPU pointers natively)."""
    config = config or OptConfig.gpu_all()
    module, kernels = front.module, front.kernels

    with _span(observer, "standard_pipeline"):
        for function in list(module.functions.values()):
            if function.blocks:
                standard_pipeline(module, function, config, manager=manager)

    from .clone import clone_function

    restriction_warnings: list[str] = []
    for kinfo in kernels.values():
        with _span(observer, "device_lower", kernel=kinfo.kernel.name):
            kinfo.violations = check_kernel(module, kinfo.kernel)
            if config.device_alloc:
                # Extension (paper future work): device-side allocation
                # is supported through the bump allocator, so it is no
                # longer a restriction.
                kinfo.violations = [
                    v for v in kinfo.violations if v.kind != "gpu-allocation"
                ]
            if kinfo.violations:
                kinfo.cpu_only = True
                details = "; ".join(str(v) for v in kinfo.violations)
                message = (
                    f"Concord: {kinfo.body_class.name} cannot run on the GPU "
                    f"({details}); falling back to CPU execution"
                )
                restriction_warnings.append(message)
                warnings.warn(message, ConcordWarning, stacklevel=3)
                continue
            gpu_kernel = clone_function(
                module, kinfo.kernel, kinfo.kernel.name + ".gpu"
            )
            kernel_pipeline(
                module, gpu_kernel, config, manager=manager, observer=observer
            )
            kinfo.gpu_kernel = gpu_kernel
            if kinfo.join_kernel is not None:
                gpu_join = clone_function(
                    module, kinfo.join_kernel, kinfo.join_kernel.name + ".gpu"
                )
                kernel_pipeline(
                    module, gpu_join, config, manager=manager, observer=observer
                )
                kinfo.gpu_join_kernel = gpu_join
            else:
                kinfo.gpu_join_kernel = None
    return PipelineArtifact(
        key=pipeline_key(front.key, config),
        frontend_key=front.key,
        config=config,
        module=module,
        sema=front.sema,
        kernels=kernels,
        source=front.source,
        warnings=restriction_warnings,
    )


# -- stage 3: closure emission ---------------------------------------------------


def closure_stage(pipe: PipelineArtifact, observer=None) -> CompiledProgram:
    """Emit the executable closure: OpenCL C text per GPU-capable kernel
    (plus the hierarchical reduce wrapper for reductions) and assemble
    the :class:`CompiledProgram` whose ``program_id`` is the stage's
    content hash."""
    from ..codegen.opencl import emit_kernel_opencl, emit_reduce_wrapper_opencl
    from .runtime import REDUCTION_GROUP_SIZE

    with _span(observer, "codegen"):
        for kinfo in pipe.kernels.values():
            if kinfo.cpu_only:
                continue
            kinfo.opencl_source = emit_kernel_opencl(pipe.module, kinfo.gpu_kernel)
            gpu_join = getattr(kinfo, "gpu_join_kernel", None)
            if gpu_join is not None:
                kinfo.reduce_wrapper_source = emit_reduce_wrapper_opencl(
                    pipe.module,
                    kinfo.body_class.struct_type.name,
                    kinfo.body_class.struct_type.size(),
                    kinfo.gpu_kernel,
                    gpu_join,
                    group_size=REDUCTION_GROUP_SIZE,
                )
    return CompiledProgram(
        module=pipe.module,
        sema=pipe.sema,
        kernels=pipe.kernels,
        config=pipe.config,
        source=pipe.source,
        program_id=program_key(pipe.key),
    )


# -- drivers -------------------------------------------------------------------


def compile_source(
    source: str,
    config: Optional[OptConfig] = None,
    module_name: str = "concord",
    observer=None,
) -> CompiledProgram:
    """Compile MiniC++ source into a :class:`CompiledProgram` by chaining
    the three stages in memory (no artifact store).

    ``observer`` (a ``repro.obs.Observer``) is optional: when attached, the
    driver brackets the frontend, the standard pipeline and the per-kernel
    device lowering (including the SVM-lowering step) in phase spans and
    records pass statistics into the observer.  Without one, compilation
    runs the exact pre-observability code paths.
    """
    config = config or OptConfig.gpu_all()
    manager = PassManager(verify=config.verify) if observer is not None else None
    with _span(observer, "compile", module=module_name):
        front = frontend_stage(source, module_name, observer=observer)
        pipe = pipeline_stage(front, config, observer=observer, manager=manager)
        program = closure_stage(pipe, observer=observer)
    if observer is not None:
        observer.record_pass_stats(manager.stats.values())
    return program


def compile_cached(
    source: str,
    config: Optional[OptConfig] = None,
    module_name: str = "concord",
    store=None,
    observer=None,
) -> tuple:
    """Staged compilation through an artifact store.

    ``store`` is anything with ``get(kind, key) -> object | None`` and
    ``put(kind, key, obj)`` (canonically a
    :class:`repro.service.ArtifactStore`); ``None`` degenerates to
    :func:`compile_source`.  Returns ``(program, stages)`` where
    ``stages`` maps each stage name to ``"hit"`` or ``"miss"`` — a fully
    warm store answers from the ``closure`` artifact alone and skips the
    frontend, the pipeline and the codegen work entirely.

    Every run of the returned program is bit-identical to one compiled
    monolithically: artifacts are snapshots of the exact objects the
    in-memory pipeline produces (the compile-cache fuzz oracle and
    ``tests/test_staged_compile.py`` hold it to that bar).
    """
    config = config or OptConfig.gpu_all()
    if store is None:
        return (
            compile_source(source, config, module_name, observer=observer),
            {"frontend": "miss", "pipeline": "miss", "closure": "miss"},
        )
    counters = observer.counters if observer is not None else None

    def note(stage: str, outcome: str) -> None:
        if counters is not None:
            counters.add(f"service.{stage}_{outcome}s" if outcome == "hit"
                         else f"service.{stage}_{outcome}es")

    stages = {}
    fkey = frontend_key(source, module_name)
    pkey = pipeline_key(fkey, config)
    ckey = program_key(pkey)

    manager = PassManager(verify=config.verify) if observer is not None else None
    with _span(observer, "compile", module=module_name):
        program = store.get("closure", ckey)
        if program is not None:
            stages = {"frontend": "hit", "pipeline": "hit", "closure": "hit"}
            for stage in stages:
                note(stage, "hit")
            _replay_restriction_warnings(program)
            return program, stages

        note("closure", "miss")
        stages["closure"] = "miss"
        pipe = store.get("pipeline", pkey)
        if pipe is not None:
            stages["frontend"] = stages["pipeline"] = "hit"
            note("frontend", "hit")
            note("pipeline", "hit")
            for message in pipe.warnings:
                warnings.warn(message, ConcordWarning, stacklevel=2)
        else:
            note("pipeline", "miss")
            stages["pipeline"] = "miss"
            front = store.get("frontend", fkey)
            if front is not None:
                stages["frontend"] = "hit"
                note("frontend", "hit")
            else:
                note("frontend", "miss")
                stages["frontend"] = "miss"
                front = frontend_stage(source, module_name, observer=observer)
                store.put("frontend", fkey, front)
            pipe = pipeline_stage(
                front, config, observer=observer, manager=manager
            )
            store.put("pipeline", pkey, pipe)
        program = closure_stage(pipe, observer=observer)
        store.put("closure", ckey, program)
    if observer is not None and manager is not None:
        observer.record_pass_stats(manager.stats.values())
    return program, stages


def _replay_restriction_warnings(program: CompiledProgram) -> None:
    """A store hit must behave like a compile: CPU-only kernels warned at
    compile time, so they warn on every warm load too."""
    for kinfo in program.kernels.values():
        if kinfo.cpu_only and kinfo.violations:
            details = "; ".join(str(v) for v in kinfo.violations)
            warnings.warn(
                f"Concord: {kinfo.body_class.name} cannot run on the GPU "
                f"({details}); falling back to CPU execution",
                ConcordWarning,
                stacklevel=3,
            )


# -- kernel wrappers -----------------------------------------------------------


def _first_loc(function: Function):
    """First source location in ``function``, for stamping synthesized
    calls to it (the wrapper has no source line of its own)."""
    for block in function.blocks:
        for instr in block.instructions:
            if instr.loc is not None:
                return instr.loc
    return None


def _make_kernel_wrapper(module: Module, info: ClassInfo, operator_fn: Function) -> Function:
    """``void kernel.<Class>(Class* body, int i)`` calling operator()."""
    name = f"kernel.{info.struct_type.name}"
    ftype = FunctionType(VOID, (ptr(info.struct_type), I32))
    kernel = Function(name, ftype, ["body", "i"])
    kernel.attributes["kernel"] = True
    kernel.attributes["body_class"] = info.name
    kernel.attributes["source_locs"] = True
    module.add_function(kernel)
    entry = kernel.new_block("entry")
    builder = IRBuilder(entry)
    # The index argument *is* get_global_id(0) on the device; the runtime
    # passes the iteration index explicitly so the same wrapper runs on the
    # CPU.  The L3OPT pass uses the gpu.global_id intrinsic, which the
    # executor binds to the same value.
    call = builder.call(operator_fn, [kernel.args[0], kernel.args[1]])
    call.loc = _first_loc(operator_fn)
    builder.ret()
    return kernel


def _make_join_wrapper(module: Module, info: ClassInfo, join_fn: Function) -> Function:
    """``void join.<Class>(Class* into, Class* from)``."""
    name = f"join.{info.struct_type.name}"
    ftype = FunctionType(VOID, (ptr(info.struct_type), ptr(info.struct_type)))
    kernel = Function(name, ftype, ["into", "from"])
    kernel.attributes["kernel"] = True
    kernel.attributes["join_of"] = info.name
    kernel.attributes["source_locs"] = True
    module.add_function(kernel)
    entry = kernel.new_block("entry")
    builder = IRBuilder(entry)
    call = builder.call(join_fn, [kernel.args[0], kernel.args[1]])
    call.loc = _first_loc(join_fn)
    builder.ret()
    return kernel
