"""The Concord compute runtime (paper sections 2.2, 3.3, 3.4).

A :class:`ConcordRuntime` owns the shared virtual memory region, loads a
compiled program (materializing vtables and global symbols into the shared
region — section 3.2), hands out typed views for host-side data-structure
construction, and executes the two parallel constructs:

* ``parallel_for_hetero(n, body, on_cpu)``
* ``parallel_reduce_hetero(n, body, on_cpu)``

Device execution lives in the pluggable backends (:mod:`repro.backend`):
``CpuBackend`` models the multicore path, ``GpuBackend`` models the
paper's runtime API — per-program ``gpu_program_t`` / per-function
``gpu_function_t`` caches mean each kernel is "JIT-compiled" (finalized +
timed for code upload) exactly once, with subsequent launches reusing the
cached binary, and reductions follow section 3.3 (private Body copies,
tree-wise per-work-group reduction in simulated local memory, sequential
host join of group results).

Placement is decided by the construct scheduler (:mod:`repro.sched`):
the default ``gpu`` policy and the ``cpu`` policy reproduce the paper's
two fixed paths bit for bit, while ``auto`` and ``hybrid`` calibrate
from measured throughput and may split one index space across both
backends.  See ``docs/RUNTIME.md``.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

from ..backend import CpuBackend, GpuBackend
from ..exec.buffers import DEFAULT_MEM_EVENT_CAP, MemEventColumns, PrivateMemoryPool
from ..exec.compiled import CodeCache, CompiledEngine
from ..exec.interp import ExecTrace, Interpreter
from ..gpu.timing import DeviceReport
from ..ir.types import StructType, Type
from ..minicpp.sema import ClassInfo
from ..sched import DEFAULT_POLICY, Scheduler
from ..svm import (
    ArrayView,
    SharedAllocator,
    SharedRegion,
    StructView,
    SvmHeap,
    address_of,
)
from .compiler import CompiledProgram, ConcordWarning, KernelInfo
from .system import System, ultrabook

__all__ = [
    "ConcordRuntime",
    "ConcordWarning",
    "ExecutionReport",
    "JIT_SECONDS_PER_INSTRUCTION",
    "REDUCTION_GROUP_SIZE",
]

#: Simulated cost of one vendor-JIT compilation, per kernel (the paper's
#: GPU times include a one-time compilation per kernel).  Read by the
#: GPU backend at call time so tests can monkeypatch it here.
JIT_SECONDS_PER_INSTRUCTION = 5e-9
#: Work-group size used for hierarchical reductions (section 3.3).
REDUCTION_GROUP_SIZE = 16


@dataclass
class ExecutionReport:
    """What one parallel construct cost on the device(s) that ran it."""

    device: str  # "cpu" | "gpu" | "hybrid"
    n: int
    report: DeviceReport
    jit_seconds: float = 0.0
    fallback_reason: str = ""
    #: Launch-only seconds per device for hybrid constructs (the split
    #: scheduler's final virtual clocks).  ``None`` for single-device
    #: runs — :meth:`per_device_seconds` derives those from ``device``.
    device_seconds: Optional[dict] = None

    @property
    def seconds(self) -> float:
        return self.report.seconds + self.jit_seconds

    @property
    def energy_joules(self) -> float:
        return self.report.energy_joules

    def per_device_seconds(self) -> dict:
        """Launch seconds by device — the task graph's unit of virtual
        clock advancement.  Single-device reports occupy their device for
        the whole launch; hybrid reports with recorded clocks occupy each
        device for its own share, and unlabeled hybrid merges
        conservatively occupy both devices for the full duration."""
        if self.device_seconds is not None:
            return dict(self.device_seconds)
        if self.device in ("cpu", "gpu"):
            return {self.device: self.report.seconds}
        return {"gpu": self.report.seconds, "cpu": self.report.seconds}

    def __add__(self, other):
        """Merge two construct reports (sequential composition): seconds,
        energy and event counts sum; the device is kept when both halves
        agree and becomes ``"hybrid"`` otherwise.  ``sum()`` over reports
        works via the 0 identity."""
        if other == 0:
            return self
        if not isinstance(other, ExecutionReport):
            return NotImplemented
        mine, theirs = self.per_device_seconds(), other.per_device_seconds()
        merged = {
            device: mine.get(device, 0.0) + theirs.get(device, 0.0)
            for device in {*mine, *theirs}
        }
        return ExecutionReport(
            device=self.device if self.device == other.device else "hybrid",
            n=self.n + other.n,
            report=self.report + other.report,
            jit_seconds=self.jit_seconds + other.jit_seconds,
            fallback_reason=self.fallback_reason or other.fallback_reason,
            device_seconds=merged,
        )

    __radd__ = __add__


class ConcordRuntime:
    """Executes compiled Concord programs over software SVM."""

    def __init__(
        self,
        program: CompiledProgram,
        system: Optional[System] = None,
        region_size: int = 1 << 24,
        collect_mem_events: bool = True,
        mem_event_cap: int = DEFAULT_MEM_EVENT_CAP,
        engine: str = "compiled",
        keep_traces: bool = False,
        observer=None,
        policy: str = DEFAULT_POLICY,
        graph: bool = False,
        graph_placement: str = "policy",
        declared_check: str = "off",
    ):
        if engine not in ("compiled", "reference", "vector"):
            raise ValueError(
                f"unknown engine {engine!r} "
                "(expected 'compiled', 'reference' or 'vector')"
            )
        if declared_check not in ("off", "warn", "trap"):
            raise ValueError(
                f"unknown declared_check {declared_check!r} "
                "(expected 'off', 'warn' or 'trap')"
            )
        self.program = program
        self.system = system or ultrabook()
        self.region = SharedRegion(region_size)
        self.allocator = SharedAllocator(self.region, reserve=1 << 14)
        self.heap = SvmHeap(self.region, self.allocator)
        self.collect_mem_events = collect_mem_events
        # One cap, threaded into every trace this runtime creates (the
        # traces enforce it; see repro.exec.buffers.DEFAULT_MEM_EVENT_CAP).
        self.mem_event_cap = mem_event_cap
        self.engine = engine
        # Optional observability sink (repro.obs.Observer).  Every use is
        # guarded on ``is not None`` so the default configuration pays
        # nothing — spans, counters and profiles exist only on request.
        self.obs = observer
        counters = observer.counters if observer is not None else None
        # Threaded-code cache: each kernel compiles at most once per
        # runtime, every launch replays the cached closures (the
        # simulator-level analogue of the gpu_function_t JIT cache).
        self.code_cache = CodeCache(self.region, counters=counters)
        self.private_pool = PrivateMemoryPool(
            Interpreter.PRIVATE_WINDOW + 0x1000, counters=counters
        )
        # Debug/verification hook — when keep_traces is set, every per-construct
        # trace is retained here in execution order (the equivalence suite
        # compares them across engines).
        self.keep_traces = keep_traces
        self.trace_log: list[ExecTrace] = []
        # Device-side heap (paper future-work extension): reserved lazily
        # when the program was compiled with device_alloc.
        self._device_heap = None
        self._symbols: dict[int, object] = {}
        # gpu_program_t: one gpu_function_t entry per (program, kernel)
        # pair — keyed by program id because kernel names repeat across
        # independently compiled programs.
        self._gpu_function_cache: dict[tuple, object] = {}
        self.total_gpu_report = DeviceReport(device="gpu", seconds=0, energy_joules=0)
        self.total_cpu_report = DeviceReport(device="cpu", seconds=0, energy_joules=0)
        # The vector engine swaps the GPU backend for the columnar one —
        # scalar per-lane execution survives underneath it as the
        # per-kernel fallback (and the CPU backend is untouched: the
        # multicore path models per-thread execution, not warps).
        if engine == "vector":
            from ..backend.vector import VectorBackend

            gpu_backend = VectorBackend(self)
        else:
            gpu_backend = GpuBackend(self)
        self.backends = {"cpu": CpuBackend(self), "gpu": gpu_backend}
        self.scheduler = Scheduler(self, policy=policy)
        # Async task-graph mode (repro.runtime.graph): when enabled, the
        # parallel constructs route through submit().result() so their
        # declared-conservative dependencies serialize them (bit-identical
        # to synchronous), while explicit submit()/wait() callers get
        # deferred execution with inter-construct overlap.
        self.graph_mode = graph
        self.graph_placement = graph_placement
        # Declared-set runtime validation (repro.runtime.graph): "warn"
        # streams violation events when a submitted construct touches
        # bytes outside its declared read/write spans, "trap" raises
        # DeclaredSetViolation.  Requires collect_mem_events.
        self.declared_check = declared_check
        self._task_graph = None
        self._load_program()

    # -- program loading (vtables + globals into the shared region) -----------

    def _load_program(self) -> None:
        module = self.program.module
        symbol_ids = getattr(module, "symbol_ids", {})
        # Ensure every virtual function has a symbol id (devirt assigns them
        # lazily; CPU dispatch needs them all).
        for class_name, slots in module.vtables.items():
            for fn in slots:
                if fn.name not in symbol_ids:
                    symbol_ids[fn.name] = 0x1000 + len(symbol_ids)
        module.symbol_ids = symbol_ids
        self._symbols = {
            sid: module.functions[name]
            for name, sid in symbol_ids.items()
            if name in module.functions
        }
        # Materialize globals; vtable arrays get their slots filled with the
        # shared symbol ids (paper: vtables + global symbols move into the
        # shared memory region).
        for gvar in module.globals.values():
            size = max(1, gvar.value_type.size())
            gvar.address = self.allocator.calloc(size, gvar.value_type.align())
            init = gvar.initializer
            if isinstance(init, tuple) and init[0] == "vtable":
                class_name = init[1]
                slots = module.vtables.get(class_name, [])
                for index, fn in enumerate(slots):
                    self.region.write_int(
                        gvar.address + 8 * index, 8, symbol_ids[fn.name], signed=False
                    )
            elif isinstance(init, (int, float)):
                from ..svm.views import write_typed

                write_typed(self.region, gvar.address, gvar.value_type, init)

    # -- host-side object construction ------------------------------------------

    def new(self, class_name: str, *ctor_args) -> StructView:
        """Allocate a class instance in SVM; runs its constructor (and
        vtable install) through the host interpreter, like ``new`` in the
        paper's host C++."""
        info = self.program.class_info(class_name)
        view = self.heap.new_struct(info.struct_type)
        self._construct(info, view.addr, ctor_args)
        return view

    def new_array(self, element: "str | Type", count: int) -> ArrayView:
        if isinstance(element, str):
            info = self.program.class_info(element)
            element_type: Type = info.struct_type
        else:
            element_type = element
        return self.heap.new_array(element_type, count)

    def free(self, view) -> None:
        self.heap.free(view)

    def view(self, class_name: str, address: int) -> StructView:
        info = self.program.class_info(class_name)
        return StructView(self.region, info.struct_type, address)

    def _construct(self, info: ClassInfo, addr: int, ctor_args: tuple) -> None:
        module = self.program.module
        ctor_fns = [
            fn
            for name, fn in module.functions.items()
            if fn.attributes.get("constructor_of") == info.name
        ]
        matching = [
            fn for fn in ctor_fns if len(fn.args) == 1 + len(ctor_args)
        ]
        if matching:
            interp = self._host_interpreter()
            interp.call_function(matching[0], [addr, *[_raw(a) for a in ctor_args]])
            interp.release_private_memory()
            return
        if ctor_args:
            raise TypeError(
                f"{info.name} has no {len(ctor_args)}-argument constructor"
            )
        if info.polymorphic:
            self.install_vtable(info, addr)

    def install_vtable(self, info: ClassInfo, addr: int) -> None:
        gvar = self.program.module.globals.get(f"__vtable.{info.struct_type.name}")
        if gvar is None or gvar.address is None:
            raise RuntimeError(f"vtable for {info.name} not loaded")
        from ..minicpp.sema import VPTR_FIELD

        offset = info.find_field(VPTR_FIELD)[0]
        self.region.write_int(addr + offset, 8, gvar.address, signed=False)

    def call_host(self, function_name: str, *args):
        """Run any compiled function on the host interpreter (used for
        helpers, validation and the sequential join fallback)."""
        fn = self.program.module.functions[function_name]
        interp = self._host_interpreter()
        try:
            return interp.call_function(fn, [_raw(a) for a in args])
        finally:
            interp.release_private_memory()

    def _host_interpreter(self, trace: Optional[ExecTrace] = None):
        return self._make_engine(
            device="cpu",
            trace=trace,
            allocator=self.allocator,
            collect_mem_events=False,
        )

    # -- observability helpers ---------------------------------------------

    def _span(self, name: str, category: str = "", **attrs):
        """A phase span when an observer is attached, otherwise a no-op
        context (the ``as`` target is then ``None``)."""
        if self.obs is None:
            return nullcontext()
        return self.obs.span(name, category, **attrs)

    def _harvest_traces(self, traces) -> dict:
        """Fold per-trace execution totals into the observer's counter
        registry; returns the construct-level totals for profile
        attachment.  Only called when an observer is attached."""
        totals = {
            "engine.instructions": 0,
            "engine.flops": 0,
            "engine.int_ops": 0,
            "engine.calls": 0,
            "engine.translations": 0,
            "mem_events.kept": 0,
            "mem_events.dropped": 0,
        }
        for trace in traces:
            totals["engine.instructions"] += trace.instructions
            totals["engine.flops"] += trace.flops
            totals["engine.int_ops"] += trace.int_ops
            totals["engine.calls"] += trace.calls
            totals["engine.translations"] += trace.translations
            totals["mem_events.kept"] += len(trace.mem_events)
            totals["mem_events.dropped"] += trace.mem_events_dropped
        counters = self.obs.counters
        for name, value in totals.items():
            counters.add(name, value)
        counters.add("obs.counter_flushes", 1)
        return totals

    def _record_line_sample(self, kernel, device: str, traces) -> None:
        """Merge the traces' executed-block histograms and hand them to the
        observer for source-line attribution (:mod:`repro.obs.lines`).
        Only called when an observer is attached."""
        merged: dict = {}
        for trace in traces:
            for uid, count in trace.block_counts.items():
                merged[uid] = merged.get(uid, 0) + count
        if merged:
            self.obs.record_kernel_trace(kernel, device, merged)

    def _record_construct(
        self,
        cspan,
        kernel_name: str,
        construct: str,
        device: str,
        n: int,
        *,
        seconds: float,
        energy_joules: float,
        phases: dict,
        traces,
        span_seconds=(),
        line_samples=(),
    ) -> None:
        """One construct's worth of observer bookkeeping, shared by every
        backend and the hybrid scheduler: stamp simulated times onto the
        phase spans, flush trace counters, record the launch profile and
        the source-line samples.  Only called when an observer is
        attached."""
        for span, sim in span_seconds:
            if span is not None:
                span.sim_seconds = sim
        if cspan is not None:
            cspan.sim_seconds = seconds
        self.obs.record_launch(
            kernel_name,
            construct,
            device,
            n,
            seconds=seconds,
            energy_joules=energy_joules,
            phases=phases,
            counters=self._harvest_traces(traces),
        )
        for kernel, sample_device, sample_traces in line_samples:
            self._record_line_sample(kernel, sample_device, sample_traces)

    # -- execution-engine factory ------------------------------------------

    def _new_trace(self, cap: Optional[int] = None) -> ExecTrace:
        """A trace with this runtime's cap; the compiled engine gets the
        columnar event buffer (five parallel int arrays instead of one
        MemEvent object per access)."""
        if cap is None:
            cap = self.mem_event_cap
        if self.engine in ("compiled", "vector"):
            return ExecTrace(mem_events=MemEventColumns(), mem_event_cap=cap)
        return ExecTrace(mem_event_cap=cap)

    def _make_engine(
        self,
        device: str,
        trace: Optional[ExecTrace] = None,
        collect_mem_events: Optional[bool] = None,
        global_id: int = 0,
        num_cores: int = 1,
        allocator=None,
    ):
        """Build the selected execution engine.  Both engines share the
        runtime's symbol table and private-memory pool; the compiled engine
        additionally shares the per-runtime code cache, so constructing an
        engine per work-item stays cheap (compile once, launch many)."""
        if collect_mem_events is None:
            collect_mem_events = self.collect_mem_events
        counters = self.obs.counters if self.obs is not None else None
        # The vector engine executes whole chunks in the backend; any
        # *scalar* engine it needs (host calls, per-kernel fallback) is
        # the threaded-code one.
        if self.engine in ("compiled", "vector"):
            return CompiledEngine(
                self.region,
                device=device,
                trace=trace,
                symbols=self._symbols,
                collect_mem_events=collect_mem_events,
                global_id=global_id,
                num_cores=num_cores,
                allocator=allocator,
                code_cache=self.code_cache,
                private_pool=self.private_pool,
                counters=counters,
            )
        return Interpreter(
            self.region,
            device=device,
            trace=trace,
            symbols=self._symbols,
            collect_mem_events=collect_mem_events,
            global_id=global_id,
            num_cores=num_cores,
            allocator=allocator,
            private_pool=self.private_pool,
            counters=counters,
        )

    def device_heap(self):
        """The device-side bump allocator (created on first use)."""
        if self._device_heap is None:
            from ..svm.allocator import DeviceBumpAllocator

            slab_size = max(1 << 16, self.region.size // 16)
            base = self.allocator.malloc(slab_size, align=64)
            self._device_heap = DeviceBumpAllocator(self.region, base, slab_size)
        return self._device_heap

    # -- task graph (repro.runtime.graph) ----------------------------------

    @property
    def task_graph(self):
        """The runtime's task graph, created on first use (``submit`` or
        graph-mode construct)."""
        if self._task_graph is None:
            from .graph import TaskGraph

            self._task_graph = TaskGraph(self, placement=self.graph_placement)
        return self._task_graph

    def submit(
        self,
        n: int,
        body,
        construct: str = "for",
        reads=None,
        writes=None,
        on_cpu: bool = False,
        policy: Optional[str] = None,
    ):
        """Enqueue one deferred construct with declared region accesses
        and return its :class:`~repro.runtime.graph.ConstructFuture` (see
        ``docs/GRAPH.md``).  Omitting ``reads``/``writes`` falls back to a
        conservative whole-region access."""
        return self.task_graph.submit(
            n,
            body,
            construct=construct,
            reads=reads,
            writes=writes,
            on_cpu=on_cpu,
            policy=policy,
        )

    def wait(self):
        """Force every pending submitted construct; returns the graph's
        :class:`~repro.runtime.graph.GraphStats`."""
        return self.task_graph.wait()

    # -- parallel constructs --------------------------------------------------------

    def parallel_for_hetero(
        self, n: int, body, on_cpu: bool = False, policy: Optional[str] = None
    ) -> ExecutionReport:
        """The paper's heterogeneous parallel-for.  ``on_cpu=True`` forces
        the multicore path; otherwise placement follows ``policy`` (this
        call's override, else the runtime's configured policy)."""
        if self.graph_mode:
            return self.submit(n, body, "for", on_cpu=on_cpu, policy=policy).result()
        kinfo = self._kernel_of(body)
        return self.scheduler.run(kinfo, n, body, "for", on_cpu=on_cpu, policy=policy)

    def parallel_reduce_hetero(
        self, n: int, body, on_cpu: bool = False, policy: Optional[str] = None
    ) -> ExecutionReport:
        if self.graph_mode:
            return self.submit(
                n, body, "reduce", on_cpu=on_cpu, policy=policy
            ).result()
        kinfo = self._kernel_of(body)
        if kinfo.construct != "reduce":
            raise TypeError(
                f"{kinfo.body_class.name} has no join method; use "
                "parallel_for_hetero"
            )
        return self.scheduler.run(
            kinfo, n, body, "reduce", on_cpu=on_cpu, policy=policy
        )

    def _kernel_of(self, body) -> KernelInfo:
        if isinstance(body, StructView):
            name = body.struct_type.name.replace("__", "::")
            for cname, kinfo in self.program.kernels.items():
                if kinfo.body_class.struct_type.name == body.struct_type.name:
                    return kinfo
            raise KeyError(f"class {name} is not a heterogeneous body")
        raise TypeError("body must be a StructView created by runtime.new()")


def _raw(value):
    return address_of(value) if isinstance(value, (StructView, ArrayView)) else value
