"""The Concord compute runtime (paper sections 2.2, 3.3, 3.4).

A :class:`ConcordRuntime` owns the shared virtual memory region, loads a
compiled program (materializing vtables and global symbols into the shared
region — section 3.2), hands out typed views for host-side data-structure
construction, and executes the two parallel constructs:

* ``parallel_for_hetero(n, body, on_cpu)``
* ``parallel_reduce_hetero(n, body, on_cpu)``

GPU offload goes through :meth:`_offload` / :meth:`_offload_reduce`, which
model the paper's runtime API: per-program ``gpu_program_t`` and
per-function ``gpu_function_t`` caches mean each kernel is "JIT-compiled"
(finalized + timed for code upload) exactly once, with subsequent launches
reusing the cached binary — GPU timings include the one-time JIT cost, like
the paper's measurements.

Reductions follow section 3.3: every work-item gets a private copy of the
Body, copies are reduced tree-wise per work-group in (simulated) local
memory, and group results are joined sequentially on the host using the
original ``join``.
"""

from __future__ import annotations

import math
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

from ..cpu.timing import time_cpu_execution
from ..exec.buffers import DEFAULT_MEM_EVENT_CAP, MemEventColumns, PrivateMemoryPool
from ..exec.compiled import CodeCache, CompiledEngine
from ..exec.interp import ExecTrace, Interpreter
from ..gpu.cache import CacheModel
from ..gpu.timing import DeviceReport, time_gpu_kernel
from ..ir.types import StructType, Type
from ..minicpp.sema import ClassInfo
from ..svm import (
    ArrayView,
    SharedAllocator,
    SharedRegion,
    StructView,
    SvmHeap,
    address_of,
)
from .compiler import CompiledProgram, ConcordWarning, KernelInfo
from .system import System, ultrabook

#: Simulated cost of one vendor-JIT compilation, per kernel (the paper's
#: GPU times include a one-time compilation per kernel).
JIT_SECONDS_PER_INSTRUCTION = 5e-9
#: Work-group size used for hierarchical reductions (section 3.3).
REDUCTION_GROUP_SIZE = 16


@dataclass
class ExecutionReport:
    """What one parallel construct cost on the device that ran it."""

    device: str  # "cpu" | "gpu"
    n: int
    report: DeviceReport
    jit_seconds: float = 0.0
    fallback_reason: str = ""

    @property
    def seconds(self) -> float:
        return self.report.seconds + self.jit_seconds

    @property
    def energy_joules(self) -> float:
        return self.report.energy_joules


@dataclass
class _GpuFunctionCache:
    """gpu_function_t: cached per-kernel JIT result (section 3.4)."""

    finalized: bool = False
    jit_seconds: float = 0.0
    launches: int = 0


class ConcordRuntime:
    """Executes compiled Concord programs over software SVM."""

    def __init__(
        self,
        program: CompiledProgram,
        system: Optional[System] = None,
        region_size: int = 1 << 24,
        collect_mem_events: bool = True,
        mem_event_cap: int = DEFAULT_MEM_EVENT_CAP,
        engine: str = "compiled",
        keep_traces: bool = False,
        observer=None,
    ):
        if engine not in ("compiled", "reference"):
            raise ValueError(
                f"unknown engine {engine!r} (expected 'compiled' or 'reference')"
            )
        self.program = program
        self.system = system or ultrabook()
        self.region = SharedRegion(region_size)
        self.allocator = SharedAllocator(self.region, reserve=1 << 14)
        self.heap = SvmHeap(self.region, self.allocator)
        self.collect_mem_events = collect_mem_events
        # One cap, threaded into every trace this runtime creates (the
        # traces enforce it; see repro.exec.buffers.DEFAULT_MEM_EVENT_CAP).
        self.mem_event_cap = mem_event_cap
        self.engine = engine
        # Optional observability sink (repro.obs.Observer).  Every use is
        # guarded on ``is not None`` so the default configuration pays
        # nothing — spans, counters and profiles exist only on request.
        self.obs = observer
        counters = observer.counters if observer is not None else None
        # Threaded-code cache: each kernel compiles at most once per
        # runtime, every launch replays the cached closures (the
        # simulator-level analogue of the gpu_function_t JIT cache below).
        self.code_cache = CodeCache(self.region, counters=counters)
        self.private_pool = PrivateMemoryPool(
            Interpreter.PRIVATE_WINDOW + 0x1000, counters=counters
        )
        # Debug/verification hook — when keep_traces is set, every per-construct
        # trace is retained here in execution order (the equivalence suite
        # compares them across engines).
        self.keep_traces = keep_traces
        self.trace_log: list[ExecTrace] = []
        # Device-side heap (paper future-work extension): reserved lazily
        # when the program was compiled with device_alloc.
        self._device_heap = None
        self._symbols: dict[int, object] = {}
        # gpu_program_t: one entry per (program, kernel) pair
        self._gpu_function_cache: dict[str, _GpuFunctionCache] = {}
        self.total_gpu_report = DeviceReport(device="gpu", seconds=0, energy_joules=0)
        self.total_cpu_report = DeviceReport(device="cpu", seconds=0, energy_joules=0)
        self._load_program()

    # -- program loading (vtables + globals into the shared region) -----------

    def _load_program(self) -> None:
        module = self.program.module
        symbol_ids = getattr(module, "symbol_ids", {})
        # Ensure every virtual function has a symbol id (devirt assigns them
        # lazily; CPU dispatch needs them all).
        for class_name, slots in module.vtables.items():
            for fn in slots:
                if fn.name not in symbol_ids:
                    symbol_ids[fn.name] = 0x1000 + len(symbol_ids)
        module.symbol_ids = symbol_ids
        self._symbols = {
            sid: module.functions[name]
            for name, sid in symbol_ids.items()
            if name in module.functions
        }
        # Materialize globals; vtable arrays get their slots filled with the
        # shared symbol ids (paper: vtables + global symbols move into the
        # shared memory region).
        for gvar in module.globals.values():
            size = max(1, gvar.value_type.size())
            gvar.address = self.allocator.calloc(size, gvar.value_type.align())
            init = gvar.initializer
            if isinstance(init, tuple) and init[0] == "vtable":
                class_name = init[1]
                slots = module.vtables.get(class_name, [])
                for index, fn in enumerate(slots):
                    self.region.write_int(
                        gvar.address + 8 * index, 8, symbol_ids[fn.name], signed=False
                    )
            elif isinstance(init, (int, float)):
                from ..svm.views import write_typed

                write_typed(self.region, gvar.address, gvar.value_type, init)

    # -- host-side object construction ------------------------------------------

    def new(self, class_name: str, *ctor_args) -> StructView:
        """Allocate a class instance in SVM; runs its constructor (and
        vtable install) through the host interpreter, like ``new`` in the
        paper's host C++."""
        info = self.program.class_info(class_name)
        view = self.heap.new_struct(info.struct_type)
        self._construct(info, view.addr, ctor_args)
        return view

    def new_array(self, element: "str | Type", count: int) -> ArrayView:
        if isinstance(element, str):
            info = self.program.class_info(element)
            element_type: Type = info.struct_type
        else:
            element_type = element
        return self.heap.new_array(element_type, count)

    def free(self, view) -> None:
        self.heap.free(view)

    def view(self, class_name: str, address: int) -> StructView:
        info = self.program.class_info(class_name)
        return StructView(self.region, info.struct_type, address)

    def _construct(self, info: ClassInfo, addr: int, ctor_args: tuple) -> None:
        module = self.program.module
        ctor_fns = [
            fn
            for name, fn in module.functions.items()
            if fn.attributes.get("constructor_of") == info.name
        ]
        matching = [
            fn for fn in ctor_fns if len(fn.args) == 1 + len(ctor_args)
        ]
        if matching:
            interp = self._host_interpreter()
            interp.call_function(matching[0], [addr, *[_raw(a) for a in ctor_args]])
            interp.release_private_memory()
            return
        if ctor_args:
            raise TypeError(
                f"{info.name} has no {len(ctor_args)}-argument constructor"
            )
        if info.polymorphic:
            self.install_vtable(info, addr)

    def install_vtable(self, info: ClassInfo, addr: int) -> None:
        gvar = self.program.module.globals.get(f"__vtable.{info.struct_type.name}")
        if gvar is None or gvar.address is None:
            raise RuntimeError(f"vtable for {info.name} not loaded")
        from ..minicpp.sema import VPTR_FIELD

        offset = info.find_field(VPTR_FIELD)[0]
        self.region.write_int(addr + offset, 8, gvar.address, signed=False)

    def call_host(self, function_name: str, *args):
        """Run any compiled function on the host interpreter (used for
        helpers, validation and the sequential join fallback)."""
        fn = self.program.module.functions[function_name]
        interp = self._host_interpreter()
        try:
            return interp.call_function(fn, [_raw(a) for a in args])
        finally:
            interp.release_private_memory()

    def _host_interpreter(self, trace: Optional[ExecTrace] = None):
        return self._make_engine(
            device="cpu",
            trace=trace,
            allocator=self.allocator,
            collect_mem_events=False,
        )

    # -- observability helpers ---------------------------------------------

    def _span(self, name: str, category: str = "", **attrs):
        """A phase span when an observer is attached, otherwise a no-op
        context (the ``as`` target is then ``None``)."""
        if self.obs is None:
            return nullcontext()
        return self.obs.span(name, category, **attrs)

    def _harvest_traces(self, traces) -> dict:
        """Fold per-trace execution totals into the observer's counter
        registry; returns the construct-level totals for profile
        attachment.  Only called when an observer is attached."""
        totals = {
            "engine.instructions": 0,
            "engine.flops": 0,
            "engine.int_ops": 0,
            "engine.calls": 0,
            "engine.translations": 0,
            "mem_events.kept": 0,
            "mem_events.dropped": 0,
        }
        for trace in traces:
            totals["engine.instructions"] += trace.instructions
            totals["engine.flops"] += trace.flops
            totals["engine.int_ops"] += trace.int_ops
            totals["engine.calls"] += trace.calls
            totals["engine.translations"] += trace.translations
            totals["mem_events.kept"] += len(trace.mem_events)
            totals["mem_events.dropped"] += trace.mem_events_dropped
        counters = self.obs.counters
        for name, value in totals.items():
            counters.add(name, value)
        counters.add("obs.counter_flushes", 1)
        return totals

    def _record_line_sample(self, kernel, device: str, traces) -> None:
        """Merge the traces' executed-block histograms and hand them to the
        observer for source-line attribution (:mod:`repro.obs.lines`).
        Only called when an observer is attached."""
        merged: dict = {}
        for trace in traces:
            for uid, count in trace.block_counts.items():
                merged[uid] = merged.get(uid, 0) + count
        if merged:
            self.obs.record_kernel_trace(kernel, device, merged)

    # -- execution-engine factory ------------------------------------------

    def _new_trace(self, cap: Optional[int] = None) -> ExecTrace:
        """A trace with this runtime's cap; the compiled engine gets the
        columnar event buffer (five parallel int arrays instead of one
        MemEvent object per access)."""
        if cap is None:
            cap = self.mem_event_cap
        if self.engine == "compiled":
            return ExecTrace(mem_events=MemEventColumns(), mem_event_cap=cap)
        return ExecTrace(mem_event_cap=cap)

    def _make_engine(
        self,
        device: str,
        trace: Optional[ExecTrace] = None,
        collect_mem_events: Optional[bool] = None,
        global_id: int = 0,
        num_cores: int = 1,
        allocator=None,
    ):
        """Build the selected execution engine.  Both engines share the
        runtime's symbol table and private-memory pool; the compiled engine
        additionally shares the per-runtime code cache, so constructing an
        engine per work-item stays cheap (compile once, launch many)."""
        if collect_mem_events is None:
            collect_mem_events = self.collect_mem_events
        counters = self.obs.counters if self.obs is not None else None
        if self.engine == "compiled":
            return CompiledEngine(
                self.region,
                device=device,
                trace=trace,
                symbols=self._symbols,
                collect_mem_events=collect_mem_events,
                global_id=global_id,
                num_cores=num_cores,
                allocator=allocator,
                code_cache=self.code_cache,
                private_pool=self.private_pool,
                counters=counters,
            )
        return Interpreter(
            self.region,
            device=device,
            trace=trace,
            symbols=self._symbols,
            collect_mem_events=collect_mem_events,
            global_id=global_id,
            num_cores=num_cores,
            allocator=allocator,
            private_pool=self.private_pool,
            counters=counters,
        )

    # -- parallel constructs --------------------------------------------------------

    def parallel_for_hetero(self, n: int, body, on_cpu: bool = False) -> ExecutionReport:
        kinfo = self._kernel_of(body)
        if on_cpu or kinfo.cpu_only:
            reason = "" if on_cpu else "restriction fallback"
            report = self._run_cpu(kinfo, n, body)
            report.fallback_reason = reason
            return report
        return self._offload(kinfo, n, body)

    def parallel_reduce_hetero(self, n: int, body, on_cpu: bool = False) -> ExecutionReport:
        kinfo = self._kernel_of(body)
        if kinfo.construct != "reduce":
            raise TypeError(
                f"{kinfo.body_class.name} has no join method; use "
                "parallel_for_hetero"
            )
        if on_cpu or kinfo.cpu_only:
            reason = "" if on_cpu else "restriction fallback"
            report = self._run_cpu_reduce(kinfo, n, body)
            report.fallback_reason = reason
            return report
        return self._offload_reduce(kinfo, n, body)

    def _kernel_of(self, body) -> KernelInfo:
        if isinstance(body, StructView):
            name = body.struct_type.name.replace("__", "::")
            for cname, kinfo in self.program.kernels.items():
                if kinfo.body_class.struct_type.name == body.struct_type.name:
                    return kinfo
            raise KeyError(f"class {name} is not a heterogeneous body")
        raise TypeError("body must be a StructView created by runtime.new()")

    # -- CPU execution ---------------------------------------------------------------

    def _run_cpu(self, kinfo: KernelInfo, n: int, body) -> ExecutionReport:
        obs = self.obs
        kernel_name = kinfo.kernel.name
        with self._span(
            f"construct:{kernel_name}", "construct", device="cpu", n=n
        ) as cspan:
            with self._span("launch", "phase") as launch_span:
                trace = self._new_trace()
                interp = self._make_engine(
                    device="cpu",
                    trace=trace,
                    num_cores=self.system.cpu.cores,
                    allocator=self.allocator,
                )
                kernel = kinfo.kernel
                addr = address_of(body)
                for index in range(n):
                    interp.global_id = index
                    interp.call_function(kernel, [addr, index])
                interp.release_private_memory()
                if self.keep_traces:
                    self.trace_log.append(trace)
                report = time_cpu_execution(
                    self.system.cpu,
                    [trace],
                    counters=obs.counters if obs is not None else None,
                )
        self.total_cpu_report += report
        if obs is not None:
            launch_span.sim_seconds = report.seconds
            cspan.sim_seconds = report.seconds
            obs.record_launch(
                kernel_name,
                "for",
                "cpu",
                n,
                seconds=report.seconds,
                energy_joules=report.energy_joules,
                phases={"launch": report.seconds},
                counters=self._harvest_traces([trace]),
            )
            self._record_line_sample(kinfo.kernel, "cpu", [trace])
        return ExecutionReport(device="cpu", n=n, report=report)

    def _run_cpu_reduce(self, kinfo: KernelInfo, n: int, body) -> ExecutionReport:
        # TBB-style: each worker runs iterations into (a copy of) the body
        # and joins; we model one body copy per core joined at the end.
        obs = self.obs
        kernel_name = kinfo.kernel.name
        with self._span(
            f"construct:{kernel_name}", "construct", device="cpu", n=n
        ) as cspan:
            with self._span("launch", "phase") as launch_span:
                struct = kinfo.body_class.struct_type
                size = struct.size()
                addr = address_of(body)
                cores = self.system.cpu.cores
                trace = self._new_trace()
                interp = self._make_engine(
                    device="cpu",
                    trace=trace,
                    num_cores=cores,
                    allocator=self.allocator,
                )
                copies = []
                payload = self.region.read_bytes(addr, size)
                for _ in range(min(cores, max(1, n))):
                    copy_addr = self.allocator.malloc(size, struct.align())
                    self.region.write_bytes(copy_addr, payload)
                    copies.append(copy_addr)
                for index in range(n):
                    interp.global_id = index
                    interp.call_function(
                        kinfo.kernel, [copies[index % len(copies)], index]
                    )
                join = kinfo.join_kernel
                for copy_addr in copies:
                    if join is not None:
                        interp.call_function(join, [addr, copy_addr])
                for copy_addr in copies:
                    self.allocator.free(copy_addr)
                interp.release_private_memory()
                if self.keep_traces:
                    self.trace_log.append(trace)
                report = time_cpu_execution(
                    self.system.cpu,
                    [trace],
                    counters=obs.counters if obs is not None else None,
                )
        self.total_cpu_report += report
        if obs is not None:
            launch_span.sim_seconds = report.seconds
            cspan.sim_seconds = report.seconds
            obs.record_launch(
                kernel_name,
                "reduce",
                "cpu",
                n,
                seconds=report.seconds,
                energy_joules=report.energy_joules,
                phases={"launch": report.seconds},
                counters=self._harvest_traces([trace]),
            )
            self._record_line_sample(kinfo.kernel, "cpu", [trace])
        return ExecutionReport(device="cpu", n=n, report=report)

    # -- GPU offload -------------------------------------------------------------------

    def _jit(self, kinfo: KernelInfo) -> float:
        """One-time OpenCL -> GPU ISA JIT per kernel (gpu_function_t cache)."""
        cache = self._gpu_function_cache.setdefault(
            kinfo.gpu_kernel.name, _GpuFunctionCache()
        )
        cache.launches += 1
        if cache.finalized:
            return 0.0
        instructions = sum(
            len(block.instructions) for block in kinfo.gpu_kernel.blocks
        )
        cache.jit_seconds = instructions * JIT_SECONDS_PER_INSTRUCTION
        cache.finalized = True
        return cache.jit_seconds

    def device_heap(self):
        """The device-side bump allocator (created on first use)."""
        if self._device_heap is None:
            from ..svm.allocator import DeviceBumpAllocator

            slab_size = max(1 << 16, self.region.size // 16)
            base = self.allocator.malloc(slab_size, align=64)
            self._device_heap = DeviceBumpAllocator(self.region, base, slab_size)
        return self._device_heap

    def _gpu_traces(self, kernel, n: int, args_of) -> list[ExecTrace]:
        traces = []
        # Per-work-item cap with a *global* budget: the per-item floor of
        # 1000 events keeps short lanes representative, but once the
        # work-items collectively reach ``mem_event_cap`` the remaining
        # lanes record nothing — without the running ``kept`` total, n
        # floor-capped lanes would retain up to n * 1000 events, blowing
        # the budget by orders of magnitude for large n.  Overflow is
        # visible: each trace counts its drops in ``mem_events_dropped``.
        budget = self.mem_event_cap
        per_item = max(1000, budget // max(1, n))
        kept = 0
        allocator = (
            self.device_heap() if self.program.config.device_alloc else None
        )
        for index in range(n):
            cap = min(per_item, max(0, budget - kept))
            trace = self._new_trace(cap)
            interp = self._make_engine(
                device="gpu",
                trace=trace,
                global_id=index,
                num_cores=self.system.gpu.num_eus,
                allocator=allocator,
            )
            interp.call_function(kernel, args_of(index))
            interp.release_private_memory()
            kept += len(trace.mem_events)
            traces.append(trace)
        if self.keep_traces:
            self.trace_log.extend(traces)
        return traces

    def _offload(self, kinfo: KernelInfo, n: int, body) -> ExecutionReport:
        obs = self.obs
        kernel_name = kinfo.gpu_kernel.name
        with self._span(
            f"construct:{kernel_name}", "construct", device="gpu", n=n
        ) as cspan:
            with self._span("jit", "phase") as jit_span:
                jit_seconds = self._jit(kinfo)
            # The kernel receives the body pointer in CPU representation (the
            # paper's ``CpuPtr cpu_ptr`` argument) and translates it itself.
            addr = address_of(body)
            with self._span("launch", "phase") as launch_span:
                traces = self._gpu_traces(
                    kinfo.gpu_kernel, n, lambda index: [addr, index]
                )
                report = time_gpu_kernel(
                    self.system.gpu,
                    kinfo.gpu_kernel,
                    traces,
                    counters=obs.counters if obs is not None else None,
                )
        self.total_gpu_report += report
        if obs is not None:
            jit_span.sim_seconds = jit_seconds
            launch_span.sim_seconds = report.seconds
            cspan.sim_seconds = report.seconds + jit_seconds
            obs.record_launch(
                kernel_name,
                "for",
                "gpu",
                n,
                seconds=report.seconds + jit_seconds,
                energy_joules=report.energy_joules,
                phases={"jit": jit_seconds, "launch": report.seconds},
                counters=self._harvest_traces(traces),
            )
            self._record_line_sample(kinfo.gpu_kernel, "gpu", traces)
        return ExecutionReport(device="gpu", n=n, report=report, jit_seconds=jit_seconds)

    def _offload_reduce(self, kinfo: KernelInfo, n: int, body) -> ExecutionReport:
        """Hierarchical reduction (section 3.3): private body copies, local
        memory tree reduction per work-group, sequential join of group
        results."""
        obs = self.obs
        kernel_name = kinfo.gpu_kernel.name
        tree_span = host_span = None
        local_seconds = 0.0
        host_join_seconds = 0.0
        host_trace = None
        with self._span(
            f"construct:{kernel_name}", "construct", device="gpu", n=n
        ) as cspan:
            with self._span("jit", "phase") as jit_span:
                jit_seconds = self._jit(kinfo)
            struct = kinfo.body_class.struct_type
            size = struct.size()
            addr = address_of(body)
            payload = self.region.read_bytes(addr, size)
            group = REDUCTION_GROUP_SIZE
            num_groups = (n + group - 1) // group

            # Private copies live in the shared region for the simulation; on
            # hardware they sit in private/local memory, so their accesses are
            # excluded from the global-memory trace below via fresh offsets.
            copies = [self.allocator.malloc(size, struct.align()) for _ in range(n)]
            for copy_addr in copies:
                self.region.write_bytes(copy_addr, payload)

            with self._span("launch", "phase") as launch_span:
                traces = self._gpu_traces(
                    kinfo.gpu_kernel,
                    n,
                    lambda index: [copies[index], index],
                )
                report = time_gpu_kernel(
                    self.system.gpu,
                    kinfo.gpu_kernel,
                    traces,
                    counters=obs.counters if obs is not None else None,
                )
            launch_seconds = report.seconds

            # Tree reduction within each work-group (local memory: charge a
            # small per-level cost rather than global traffic).  The GPU
            # join form falls back to the host join when SVM lowering was
            # skipped; when *neither* form exists, combining the private
            # copies is impossible — warn and leave the body unreduced
            # instead of crashing mid-construct (section 3.3's sequential
            # fallback contract: degrade, don't die).
            join_fn = getattr(kinfo, "gpu_join_kernel", None) or kinfo.join_kernel
            if join_fn is None:
                warnings.warn(
                    f"reduce body {kinfo.body_class.name} has no join "
                    "kernel on any device; group results were left "
                    "uncombined (sequential host-join fallback unavailable)",
                    ConcordWarning,
                    stacklevel=3,
                )
            else:
                with self._span(
                    "reduce_tree", "phase", groups=num_groups
                ) as tree_span:
                    join_interp = self._make_engine(
                        device="gpu" if join_fn.attributes.get("svm_lowered") else "cpu",
                        collect_mem_events=False,
                    )
                    for group_index in range(num_groups):
                        base = group_index * group
                        members = copies[base : base + group]
                        stride = 1
                        while stride < len(members):
                            for offset in range(0, len(members) - stride, stride * 2):
                                into = members[offset]
                                source = members[offset + stride]
                                join_interp.call_function(join_fn, [into, source])
                            stride *= 2
                    join_interp.release_private_memory()
                # local-memory reduction cost: log2(group) levels of cheap traffic
                levels = max(1, int(math.ceil(math.log2(group))))
                local_cycles = num_groups * levels * 8.0 / self.system.gpu.num_eus
                local_seconds = local_cycles / self.system.gpu.frequency_hz
                report.cycles += local_cycles
                report.seconds += local_seconds

                # Sequential join of group leaders on the host (original
                # join; the device form is a last-resort stand-in).  The
                # host join's simulated cost is only measured for the
                # profile — ExecutionReport keeps its historical meaning
                # (device time + JIT).
                host_fn = kinfo.join_kernel or join_fn
                if obs is not None:
                    host_trace = self._new_trace()
                with self._span("host_join", "phase") as host_span:
                    host = self._host_interpreter(trace=host_trace)
                    for group_index in range(num_groups):
                        leader = copies[group_index * group]
                        host.call_function(host_fn, [addr, leader])
                    host.release_private_memory()
            for copy_addr in copies:
                self.allocator.free(copy_addr)

        self.total_gpu_report += report
        if obs is not None:
            if host_trace is not None:
                host_join_seconds = time_cpu_execution(
                    self.system.cpu, [host_trace]
                ).seconds
            total_seconds = report.seconds + jit_seconds + host_join_seconds
            jit_span.sim_seconds = jit_seconds
            launch_span.sim_seconds = launch_seconds
            if tree_span is not None:
                tree_span.sim_seconds = local_seconds
            if host_span is not None:
                host_span.sim_seconds = host_join_seconds
            cspan.sim_seconds = total_seconds
            harvested = self._harvest_traces(
                traces + ([host_trace] if host_trace is not None else [])
            )
            obs.record_launch(
                kernel_name,
                "reduce",
                "gpu",
                n,
                seconds=total_seconds,
                energy_joules=report.energy_joules,
                phases={
                    "jit": jit_seconds,
                    "launch": launch_seconds,
                    "reduce_tree": local_seconds,
                    "host_join": host_join_seconds,
                },
                counters=harvested,
            )
            self._record_line_sample(kinfo.gpu_kernel, "gpu", traces)
            if host_trace is not None:
                host_fn = kinfo.join_kernel or join_fn
                self._record_line_sample(host_fn, "cpu", [host_trace])
        return ExecutionReport(device="gpu", n=n, report=report, jit_seconds=jit_seconds)


def _raw(value):
    return address_of(value) if isinstance(value, (StructView, ArrayView)) else value
