"""Whole-function cloning (used to produce device-lowered kernel copies)."""

from __future__ import annotations

from .. import ir
from ..ir import BasicBlock, Constant, Function, GlobalVariable, Instruction, Module


def clone_function(module: Module, source: Function, new_name: str) -> Function:
    """Deep-copy ``source`` into ``module`` under ``new_name``.

    Called functions are shared, not cloned (device lowering only rewrites
    the kernel body itself after inlining has flattened it).
    """
    clone = Function(new_name, source.ftype, [a.name for a in source.args])
    clone.attributes = dict(source.attributes)
    module.add_function(clone)

    vmap: dict[object, object] = {}
    for old_arg, new_arg in zip(source.args, clone.args):
        vmap[old_arg] = new_arg
    block_map: dict[BasicBlock, BasicBlock] = {}
    for block in source.blocks:
        block_map[block] = clone.new_block(block.name)
    for block in source.blocks:
        new_block = block_map[block]
        for instr in block.instructions:
            copy = Instruction(instr.op, instr.type, list(instr.operands), instr.name)
            copy.pred = instr.pred
            copy.alloc_type = instr.alloc_type
            copy.callee = instr.callee
            copy.gep_offset = instr.gep_offset
            copy.gep_scales = list(instr.gep_scales)
            copy.vslot = instr.vslot
            copy.vclass = instr.vclass
            copy.annotations = dict(instr.annotations)
            copy.loc = instr.loc
            new_block.append(copy)
            vmap[instr] = copy
    for block in source.blocks:
        for instr in block.instructions:
            copy = vmap[instr]
            copy.operands = [_mapped(vmap, o) for o in instr.operands]
            copy.targets = [block_map[t] for t in instr.targets]
            copy.phi_blocks = [block_map[b] for b in instr.phi_blocks]
    return clone


def _mapped(vmap, value):
    if isinstance(value, (Constant, GlobalVariable)) or value is None:
        return value
    return vmap.get(value, value)
