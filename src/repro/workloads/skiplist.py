"""Skip list search (Table 1: in-house, hierarchy of linked lists,
O(log n) expected search).

The skip list is built host-side with geometric level assignment; the
kernel walks the level hierarchy for each query.  Intermediate linked-list
traversal depends on the data — the paper's cited irregularity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..ir.types import I32
from ..runtime import ConcordRuntime, ExecutionReport
from .base import Workload, register
from .inputs import distinct_sorted_keys, random_keys

MAX_LEVEL = 8

SOURCE = """
class SkipNode {
public:
  int key;
  int value;
  int height;
  SkipNode* next[8];
};

class SkipSearchBody {
public:
  SkipNode* head;
  int max_level;
  int* queries;
  int* results;

  void operator()(int i) {
    int key = queries[i];
    SkipNode* node = head;
    int level = max_level - 1;
    while (level >= 0) {
      SkipNode* ahead = node->next[level];
      while (ahead != 0 && ahead->key < key) {
        node = ahead;
        ahead = node->next[level];
      }
      level--;
    }
    SkipNode* candidate = node->next[0];
    if (candidate != 0 && candidate->key == key) {
      results[i] = candidate->value;
    } else {
      results[i] = -1;
    }
  }
};
"""


@dataclass
class SkipListState:
    body: object
    queries: list[int]
    results: object
    table: dict[int, int]


@register
class SkipListWorkload(Workload):
    name = "SkipList"
    origin = "In-house"
    data_structure = "linked-list"
    parallel_construct = "parallel_for_hetero"
    body_class = "SkipSearchBody"
    input_description = "skip list with geometric level distribution"
    source = SOURCE
    region_size = 1 << 24

    def sizes(self, scale: float) -> tuple[int, int]:
        keys = max(64, int(1500 * scale))
        queries = max(32, int(512 * scale))
        return keys, queries

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> SkipListState:
        num_keys, num_queries = self.sizes(scale)
        keys = distinct_sorted_keys(num_keys, num_keys * 6, seed=17)
        table = {key: key ^ 0x5A5A for key in keys}
        rng = random.Random(99)

        head = rt.new("SkipNode")
        head.key = -1
        head.height = MAX_LEVEL
        # build sorted: track last node per level
        last = [head] * MAX_LEVEL
        for key in keys:
            height = 1
            while height < MAX_LEVEL and rng.random() < 0.5:
                height += 1
            node = rt.new("SkipNode")
            node.key = key
            node.value = table[key]
            node.height = height
            for level in range(height):
                last[level].view("next")[level] = node.addr
                last[level] = node

        half_hits = random_keys(num_queries, num_keys * 6, seed=23)
        queries = [
            keys[q % len(keys)] if q % 2 == 0 else half_hits[q]
            for q in range(num_queries)
        ]
        queries_arr = rt.new_array(I32, num_queries)
        queries_arr.fill_from(queries)
        results = rt.new_array(I32, num_queries)
        body = rt.new("SkipSearchBody")
        body.head = head
        body.max_level = MAX_LEVEL
        body.queries = queries_arr
        body.results = results
        return SkipListState(body, queries, results, table)

    def run(self, rt, state: SkipListState, on_cpu: bool = False) -> list[ExecutionReport]:
        return [
            rt.parallel_for_hetero(len(state.queries), state.body, on_cpu=on_cpu)
        ]

    def validate(self, rt, state: SkipListState) -> None:
        got = state.results.to_list()
        for index, key in enumerate(state.queries):
            want = state.table.get(key, -1)
            assert got[index] == want, (index, key, got[index], want)
