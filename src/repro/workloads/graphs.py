"""Helpers for placing CSR graphs into shared virtual memory."""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.types import I32
from ..runtime import ConcordRuntime
from ..svm import ArrayView
from .inputs import Graph


@dataclass
class SvmGraph:
    graph: Graph
    row_starts: ArrayView
    columns: ArrayView
    weights: ArrayView


def graph_to_svm(rt: ConcordRuntime, graph: Graph) -> SvmGraph:
    row_starts = rt.new_array(I32, graph.num_nodes + 1)
    row_starts.fill_from(graph.row_starts)
    columns = rt.new_array(I32, max(1, graph.num_edges))
    columns.fill_from(graph.columns or [0])
    weights = rt.new_array(I32, max(1, graph.num_edges))
    weights.fill_from(graph.weights or [0])
    return SvmGraph(graph, row_starts, columns, weights)
