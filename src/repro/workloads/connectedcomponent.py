"""Connected components via topology-driven label propagation (Table 1:
Galois, W-USA road network).

Each pass propagates the minimum component label across edges with
``atomic_min``; the host iterates to a fixpoint.  The search pattern is
driven entirely by the input graph — irregular as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.types import I32
from ..runtime import ConcordRuntime, ExecutionReport
from .base import Workload, register
from .graphs import SvmGraph, graph_to_svm
from .inputs import road_network

SOURCE = """
class CcBody {
public:
  int* row_starts;
  int* columns;
  int* labels;
  int* changed;

  void operator()(int i) {
    int my_label = labels[i];
    int start = row_starts[i];
    int end = row_starts[i + 1];
    for (int e = start; e < end; e++) {
      int v = columns[e];
      int other = labels[v];
      if (other < my_label) {
        my_label = other;
      }
    }
    int old = atomic_min(&labels[i], my_label);
    if (my_label < old) {
      changed[0] = 1;
    }
  }
};
"""


@dataclass
class CcState:
    svm_graph: SvmGraph
    labels: object
    changed: object
    body: object


@register
class ConnectedComponentWorkload(Workload):
    name = "ConnectedComponent"
    origin = "Galois"
    data_structure = "graph"
    parallel_construct = "parallel_for_hetero"
    body_class = "CcBody"
    input_description = "road network with disconnected islands"
    source = SOURCE
    region_size = 1 << 24

    def make_graph(self, scale: float):
        # Lower shortcut fraction + higher edge dropout creates several
        # components, like disconnected road-network islands.
        side = max(4, int(20 * scale))
        return road_network(side, side, seed=29, shortcut_fraction=0.01)

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> CcState:
        graph = self.make_graph(scale)
        svm_graph = graph_to_svm(rt, graph)
        labels = rt.new_array(I32, graph.num_nodes)
        labels.fill_from(range(graph.num_nodes))
        changed = rt.new_array(I32, 1)
        body = rt.new("CcBody")
        body.row_starts = svm_graph.row_starts
        body.columns = svm_graph.columns
        body.labels = labels
        body.changed = changed
        return CcState(svm_graph, labels, changed, body)

    def run(self, rt, state: CcState, on_cpu: bool = False) -> list[ExecutionReport]:
        reports = []
        graph = state.svm_graph.graph
        for _ in range(graph.num_nodes + 1):
            state.changed[0] = 0
            reports.append(
                rt.parallel_for_hetero(graph.num_nodes, state.body, on_cpu=on_cpu)
            )
            if state.changed[0] == 0:
                break
        else:
            raise RuntimeError("label propagation did not converge")
        return reports

    def validate(self, rt, state: CcState) -> None:
        graph = state.svm_graph.graph
        expected = reference_components(graph)
        got = state.labels.to_list()
        # labels must equal the minimum node id of each component
        for node in range(graph.num_nodes):
            assert got[node] == expected[node], (node, got[node], expected[node])


def reference_components(graph):
    labels = [None] * graph.num_nodes
    for node in range(graph.num_nodes):
        if labels[node] is not None:
            continue
        stack = [node]
        members = []
        labels[node] = node
        while stack:
            current = stack.pop()
            members.append(current)
            for target, _ in graph.neighbours(current):
                if labels[target] is None:
                    labels[target] = node
                    stack.append(target)
    return labels
