"""Raytracer (Table 1: in-house, scene graph of objects and lights in
pointer vectors, virtual-function dispatch for intersection).

One work-item per pixel: cast a primary ray through the scene, find the
nearest hit via virtual ``intersect`` calls on the shape hierarchy, shade
with point lights (shadow rays included).  Relative to the other eight
workloads the control flow is uniform across pixels — the paper's Figure 6
shows Raytracer with the *lowest* irregularity, and it gets the biggest
GPU win (9.88x on the Ultrabook).

The ``flattened`` variant builds the same scene with shapes flattened into
plain arrays indexed by integers (no pointers, no virtual calls) and an
equivalent kernel — the hand-written "OpenCL 1.2" comparator of the
paper's section 5.4 used to measure the overhead of software SVM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ir.types import F32, I32, I64, ptr
from ..runtime import ConcordRuntime, ExecutionReport
from .base import Workload, register

SOURCE = """
class Ray {
public:
  float ox; float oy; float oz;
  float dx; float dy; float dz;
};

class Shape {
public:
  float r; float g; float b;       // surface colour
  virtual float intersect(Ray* ray) { return -1.0f; }
  virtual void normal_at(float px, float py, float pz,
                         float* nx, float* ny, float* nz) {}
};

class Sphere : public Shape {
public:
  float cx; float cy; float cz;
  float radius;
  virtual float intersect(Ray* ray) {
    float lx = cx - ray->ox;
    float ly = cy - ray->oy;
    float lz = cz - ray->oz;
    float tca = lx * ray->dx + ly * ray->dy + lz * ray->dz;
    float d2 = lx*lx + ly*ly + lz*lz - tca*tca;
    float r2 = radius * radius;
    if (d2 > r2) return -1.0f;
    float thc = sqrtf(r2 - d2);
    float t0 = tca - thc;
    float t1 = tca + thc;
    if (t0 > 0.001f) return t0;
    if (t1 > 0.001f) return t1;
    return -1.0f;
  }
  virtual void normal_at(float px, float py, float pz,
                         float* nx, float* ny, float* nz) {
    float inv = rsqrtf((px-cx)*(px-cx) + (py-cy)*(py-cy) + (pz-cz)*(pz-cz) + 0.000001f);
    *nx = (px - cx) * inv;
    *ny = (py - cy) * inv;
    *nz = (pz - cz) * inv;
  }
};

class Plane : public Shape {
public:
  float ny_axis;                   // plane y = ny_axis, normal +y
  virtual float intersect(Ray* ray) {
    if (ray->dy > -0.0001f && ray->dy < 0.0001f) return -1.0f;
    float t = (ny_axis - ray->oy) / ray->dy;
    if (t > 0.001f) return t;
    return -1.0f;
  }
  virtual void normal_at(float px, float py, float pz,
                         float* nx, float* ny, float* nz) {
    *nx = 0.0f; *ny = 1.0f; *nz = 0.0f;
  }
};

class Light {
public:
  float x; float y; float z;
  float intensity;
};

class Scene {
public:
  Shape** shapes;
  int num_shapes;
  Light** lights;
  int num_lights;
};

class RenderBody {
public:
  Scene* scene;
  float* framebuffer;              // rgb per pixel
  int width; int height;

  float trace_shadow(float px, float py, float pz,
                     float lx, float ly, float lz, float dist) {
    Ray shadow;
    shadow.ox = px; shadow.oy = py; shadow.oz = pz;
    shadow.dx = lx; shadow.dy = ly; shadow.dz = lz;
    Scene* s = scene;
    for (int k = 0; k < s->num_shapes; k++) {
      float t = s->shapes[k]->intersect(&shadow);
      if (t > 0.0f && t < dist) return 0.35f;   // soft occlusion
    }
    return 1.0f;
  }

  void operator()(int i) {
    int x = i % width;
    int y = i / width;
    Ray ray;
    ray.ox = 0.0f; ray.oy = 1.0f; ray.oz = -4.0f;
    float fx = ((float)x / (float)width) * 2.0f - 1.0f;
    float fy = 1.0f - ((float)y / (float)height) * 2.0f;
    float inv = rsqrtf(fx*fx + fy*fy + 1.0f);
    ray.dx = fx * inv;
    ray.dy = fy * inv;
    ray.dz = 1.0f * inv;

    Scene* s = scene;
    float best_t = 1000000.0f;
    int best = -1;
    for (int k = 0; k < s->num_shapes; k++) {
      float t = s->shapes[k]->intersect(&ray);
      if (t > 0.0f && t < best_t) {
        best_t = t;
        best = k;
      }
    }
    float r = 0.05f; float g = 0.05f; float b = 0.1f;  // sky
    if (best >= 0) {
      Shape* shape = s->shapes[best];
      float px = ray.ox + ray.dx * best_t;
      float py = ray.oy + ray.dy * best_t;
      float pz = ray.oz + ray.dz * best_t;
      float nx; float ny; float nz;
      shape->normal_at(px, py, pz, &nx, &ny, &nz);
      float lit = 0.08f;                         // ambient
      for (int l = 0; l < s->num_lights; l++) {
        Light* light = s->lights[l];
        float lx = light->x - px;
        float ly = light->y - py;
        float lz = light->z - pz;
        float dist2 = lx*lx + ly*ly + lz*lz;
        float invd = rsqrtf(dist2 + 0.000001f);
        lx *= invd; ly *= invd; lz *= invd;
        float lambert = nx*lx + ny*ly + nz*lz;
        if (lambert > 0.0f) {
          float vis = trace_shadow(px + nx*0.01f, py + ny*0.01f, pz + nz*0.01f,
                                   lx, ly, lz, dist2 * invd);
          lit += lambert * light->intensity * vis;
        }
      }
      r = shape->r * lit;
      g = shape->g * lit;
      b = shape->b * lit;
    }
    framebuffer[i * 3] = r;
    framebuffer[i * 3 + 1] = g;
    framebuffer[i * 3 + 2] = b;
  }
};
"""

# Hand-flattened comparator (section 5.4): same scene, arrays + indices,
# no virtual calls, no pointer-containing structures.
FLATTENED_SOURCE = """
class FlatRenderBody {
public:
  // shape i: kind[i] (0 sphere, 1 plane), params[i*4..] = cx,cy,cz,r or y
  int* kind;
  float* params;
  float* colour;                  // rgb per shape
  int num_shapes;
  float* light_pos;               // xyz per light
  float* light_intensity;
  int num_lights;
  float* framebuffer;
  int width; int height;

  float intersect_one(int k, float ox, float oy, float oz,
                      float dx, float dy, float dz) {
    float* p = &params[k * 4];
    if (kind[k] == 0) {
      float lx = p[0] - ox; float ly = p[1] - oy; float lz = p[2] - oz;
      float tca = lx*dx + ly*dy + lz*dz;
      float d2 = lx*lx + ly*ly + lz*lz - tca*tca;
      float r2 = p[3] * p[3];
      if (d2 > r2) return -1.0f;
      float thc = sqrtf(r2 - d2);
      float t0 = tca - thc;
      float t1 = tca + thc;
      if (t0 > 0.001f) return t0;
      if (t1 > 0.001f) return t1;
      return -1.0f;
    }
    if (dy > -0.0001f && dy < 0.0001f) return -1.0f;
    float t = (p[0] - oy) / dy;
    if (t > 0.001f) return t;
    return -1.0f;
  }

  void operator()(int i) {
    int x = i % width;
    int y = i / width;
    float ox = 0.0f; float oy = 1.0f; float oz = -4.0f;
    float fx = ((float)x / (float)width) * 2.0f - 1.0f;
    float fy = 1.0f - ((float)y / (float)height) * 2.0f;
    float inv = rsqrtf(fx*fx + fy*fy + 1.0f);
    float dx = fx * inv; float dy = fy * inv; float dz = 1.0f * inv;

    float best_t = 1000000.0f;
    int best = -1;
    for (int k = 0; k < num_shapes; k++) {
      float t = intersect_one(k, ox, oy, oz, dx, dy, dz);
      if (t > 0.0f && t < best_t) { best_t = t; best = k; }
    }
    float r = 0.05f; float g = 0.05f; float b = 0.1f;
    if (best >= 0) {
      float px = ox + dx * best_t;
      float py = oy + dy * best_t;
      float pz = oz + dz * best_t;
      float nx; float ny; float nz;
      if (kind[best] == 0) {
        float* bp = &params[best * 4];
        float ux = px - bp[0]; float uy = py - bp[1]; float uz = pz - bp[2];
        float invn = rsqrtf(ux*ux + uy*uy + uz*uz + 0.000001f);
        nx = ux * invn;
        ny = uy * invn;
        nz = uz * invn;
      } else {
        nx = 0.0f; ny = 1.0f; nz = 0.0f;
      }
      float lit = 0.08f;
      for (int l = 0; l < num_lights; l++) {
        float lx = light_pos[l*3] - px;
        float ly = light_pos[l*3+1] - py;
        float lz = light_pos[l*3+2] - pz;
        float dist2 = lx*lx + ly*ly + lz*lz;
        float invd = rsqrtf(dist2 + 0.000001f);
        lx *= invd; ly *= invd; lz *= invd;
        float lambert = nx*lx + ny*ly + nz*lz;
        if (lambert > 0.0f) {
          float sx = px + nx*0.01f; float sy = py + ny*0.01f; float sz = pz + nz*0.01f;
          float vis = 1.0f;
          for (int k = 0; k < num_shapes; k++) {
            float t = intersect_one(k, sx, sy, sz, lx, ly, lz);
            if (t > 0.0f && t < dist2 * invd) { vis = 0.35f; }
          }
          lit += lambert * light_intensity[l] * vis;
        }
      }
      r = colour[best*3] * lit;
      g = colour[best*3+1] * lit;
      b = colour[best*3+2] * lit;
    }
    framebuffer[i * 3] = r;
    framebuffer[i * 3 + 1] = g;
    framebuffer[i * 3 + 2] = b;
  }
};
"""


def scene_spec(num_spheres: int = 6, num_lights: int = 3):
    """Deterministic scene: a floor plane plus a ring of spheres."""
    shapes = [("plane", (0.0,), (0.55, 0.55, 0.5))]
    for index in range(num_spheres):
        angle = 2.0 * math.pi * index / num_spheres
        shapes.append(
            (
                "sphere",
                (1.6 * math.cos(angle), 0.45 + 0.12 * (index % 3), 1.0 + 1.4 * math.sin(angle), 0.45),
                (0.9 if index % 3 == 0 else 0.2,
                 0.9 if index % 3 == 1 else 0.2,
                 0.9 if index % 3 == 2 else 0.2),
            )
        )
    lights = [
        (3.0, 4.0, -2.0, 0.9),
        (-3.0, 3.0, -1.0, 0.5),
        (0.0, 5.0, 3.0, 0.4),
    ][:num_lights]
    return shapes, lights


@dataclass
class RaytraceState:
    body: object
    framebuffer: object
    width: int
    height: int


@register
class RaytracerWorkload(Workload):
    name = "Raytracer"
    origin = "In-house"
    data_structure = "graph"
    parallel_construct = "parallel_for_hetero"
    body_class = "RenderBody"
    input_description = "sphere ring + plane, 3 point lights, shadows"
    source = SOURCE
    region_size = 1 << 24

    def resolution(self, scale: float) -> tuple[int, int]:
        width = max(16, int(40 * scale))
        height = max(12, int(30 * scale))
        return width, height

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> RaytraceState:
        width, height = self.resolution(scale)
        shapes, lights = scene_spec()

        shape_ptrs = rt.new_array(ptr(I64), len(shapes))
        for index, (kind, params, colour) in enumerate(shapes):
            if kind == "sphere":
                view = rt.new("Sphere")
                view.cx, view.cy, view.cz, view.radius = params
            else:
                view = rt.new("Plane")
                view.ny_axis = params[0]
            view.r, view.g, view.b = colour
            shape_ptrs[index] = view.addr

        light_ptrs = rt.new_array(ptr(I64), len(lights))
        for index, (x, y, z, intensity) in enumerate(lights):
            view = rt.new("Light")
            view.x, view.y, view.z = x, y, z
            view.intensity = intensity
            light_ptrs[index] = view.addr

        scene = rt.new("Scene")
        scene.shapes = shape_ptrs
        scene.num_shapes = len(shapes)
        scene.lights = light_ptrs
        scene.num_lights = len(lights)

        framebuffer = rt.new_array(F32, width * height * 3)
        body = rt.new("RenderBody")
        body.scene = scene
        body.framebuffer = framebuffer
        body.width = width
        body.height = height
        return RaytraceState(body, framebuffer, width, height)

    def run(self, rt, state: RaytraceState, on_cpu: bool = False) -> list[ExecutionReport]:
        n = state.width * state.height
        return [rt.parallel_for_hetero(n, state.body, on_cpu=on_cpu)]

    def validate(self, rt, state: RaytraceState) -> None:
        pixels = state.framebuffer.to_list()
        assert len(pixels) == state.width * state.height * 3
        assert all(math.isfinite(p) and 0.0 <= p <= 4.0 for p in pixels)
        # sky visible at the top corners, floor at the bottom — i.e. the
        # image is not constant and geometry is where it should be
        top_left = pixels[0:3]
        assert top_left == [
            __import__("struct").unpack("f", __import__("struct").pack("f", v))[0]
            for v in (0.05, 0.05, 0.1)
        ]
        bottom_middle = (state.height - 1) * state.width + state.width // 2
        assert pixels[bottom_middle * 3] != 0.05
        # a sphere pixel near the center should be coloured
        center = (state.height // 2) * state.width + int(state.width * 0.8)
        assert sum(pixels[center * 3 : center * 3 + 3]) > 0.05


@register
class FlatRaytracerWorkload(Workload):
    """The hand-flattened OpenCL-style comparator (paper section 5.4)."""

    name = "RaytracerFlat"
    origin = "In-house (OpenCL 1.2 comparator)"
    data_structure = "flattened arrays"
    parallel_construct = "parallel_for_hetero"
    body_class = "FlatRenderBody"
    input_description = "same scene as Raytracer, flattened to arrays"
    source = FLATTENED_SOURCE
    region_size = 1 << 24

    def resolution(self, scale: float) -> tuple[int, int]:
        width = max(16, int(40 * scale))
        height = max(12, int(30 * scale))
        return width, height

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> RaytraceState:
        width, height = self.resolution(scale)
        shapes, lights = scene_spec()

        kind = rt.new_array(I32, len(shapes))
        params = rt.new_array(F32, len(shapes) * 4)
        colour = rt.new_array(F32, len(shapes) * 3)
        for index, (skind, sparams, scolour) in enumerate(shapes):
            kind[index] = 0 if skind == "sphere" else 1
            padded = list(sparams) + [0.0] * (4 - len(sparams))
            for pos, value in enumerate(padded):
                params[index * 4 + pos] = value
            for pos, value in enumerate(scolour):
                colour[index * 3 + pos] = value

        light_pos = rt.new_array(F32, len(lights) * 3)
        light_intensity = rt.new_array(F32, len(lights))
        for index, (x, y, z, intensity) in enumerate(lights):
            light_pos[index * 3] = x
            light_pos[index * 3 + 1] = y
            light_pos[index * 3 + 2] = z
            light_intensity[index] = intensity

        framebuffer = rt.new_array(F32, width * height * 3)
        body = rt.new("FlatRenderBody")
        body.kind = kind
        body.params = params
        body.colour = colour
        body.num_shapes = len(shapes)
        body.light_pos = light_pos
        body.light_intensity = light_intensity
        body.num_lights = len(lights)
        body.framebuffer = framebuffer
        body.width = width
        body.height = height
        return RaytraceState(body, framebuffer, width, height)

    def run(self, rt, state: RaytraceState, on_cpu: bool = False) -> list[ExecutionReport]:
        n = state.width * state.height
        return [rt.parallel_for_hetero(n, state.body, on_cpu=on_cpu)]

    def validate(self, rt, state: RaytraceState) -> None:
        pixels = state.framebuffer.to_list()
        assert all(math.isfinite(p) for p in pixels)
