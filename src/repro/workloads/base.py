"""Common infrastructure for the nine evaluation workloads (Table 1).

Each workload provides:

* ``source`` — MiniC++ device code (classes, bodies, helpers), compiled by
  the Concord frontend;
* ``build(rt, scale)`` — allocate/fill input structures in SVM and return a
  state object (the paper's host-side setup code);
* ``run(rt, state, on_cpu)`` — execute the workload's heterogeneous loops
  (possibly many launches, e.g. BFS level iterations) and return the
  accumulated :class:`ExecutionReport` list;
* ``validate(rt, state)`` — check results against a pure-Python reference.

Scale 1.0 is the benchmark size; tests use smaller scales.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from ..passes import OptConfig
from ..runtime import CompiledProgram, ConcordRuntime, ExecutionReport, compile_source
from ..runtime.system import System, ultrabook


@dataclass
class RunOutcome:
    workload: str
    device: str
    reports: list[ExecutionReport] = field(default_factory=list)
    #: GraphStats when the run went through the task-graph runtime
    graph_stats: object = None

    @property
    def seconds(self) -> float:
        return sum(r.seconds for r in self.reports)

    @property
    def energy_joules(self) -> float:
        return sum(r.energy_joules for r in self.reports)


class Workload(abc.ABC):
    #: Table 1 metadata
    name: str = ""
    origin: str = ""
    data_structure: str = ""
    parallel_construct: str = "parallel_for_hetero"
    body_class: str = ""
    input_description: str = ""

    #: MiniC++ source of the device code
    source: str = ""

    #: default region size; graph workloads override
    region_size: int = 1 << 24

    _program_cache: dict = {}

    @classmethod
    def compile(cls, config: OptConfig, observer=None) -> CompiledProgram:
        key = (cls.__name__, config)
        cached = Workload._program_cache.get(key)
        if cached is None or observer is not None:
            # With an observer attached we always compile fresh so the
            # compile/SVM-lower spans and pass statistics are recorded for
            # this observation (the result is equivalent, so it may still
            # refresh the cache).
            cached = compile_source(
                cls.source, config, module_name=cls.name, observer=observer
            )
            Workload._program_cache[key] = cached
        return cached

    @classmethod
    def make_runtime(
        cls,
        config: OptConfig = None,
        system: Optional[System] = None,
        collect_mem_events: bool = True,
        engine: str = "compiled",
        keep_traces: bool = False,
        observer=None,
        policy: str = "gpu",
        graph: bool = False,
        declared_check: str = "off",
    ) -> ConcordRuntime:
        program = cls.compile(config or OptConfig.gpu_all(), observer=observer)
        return ConcordRuntime(
            program,
            system or ultrabook(),
            region_size=cls.region_size,
            collect_mem_events=collect_mem_events,
            engine=engine,
            keep_traces=keep_traces,
            observer=observer,
            policy=policy,
            graph=graph,
            declared_check=declared_check,
        )

    @abc.abstractmethod
    def build(self, rt: ConcordRuntime, scale: float = 1.0):
        ...

    @abc.abstractmethod
    def run(self, rt: ConcordRuntime, state, on_cpu: bool = False) -> list[ExecutionReport]:
        ...

    @abc.abstractmethod
    def validate(self, rt: ConcordRuntime, state) -> None:
        ...

    @classmethod
    def loc(cls) -> int:
        """Lines of MiniC++ source (Table 1's LoC analogue)."""
        return sum(1 for line in cls.source.splitlines() if line.strip())

    @classmethod
    def device_loc(cls) -> int:
        """Lines inside the parallel body classes (Table 1's device LoC)."""
        lines = cls.source.splitlines()
        count = 0
        depth = 0
        inside = False
        for line in lines:
            stripped = line.strip()
            if not inside and stripped.startswith("class") and cls.body_class in stripped:
                inside = True
                depth = 0
            if inside:
                if stripped:
                    count += 1
                depth += line.count("{") - line.count("}")
                if depth <= 0 and "}" in line and count > 1:
                    inside = False
        return count

    def execute(
        self,
        config: OptConfig,
        system: Optional[System] = None,
        on_cpu: bool = False,
        scale: float = 1.0,
        validate: bool = True,
        collect_mem_events: bool = True,
        engine: str = "compiled",
        observer=None,
        policy: Optional[str] = None,
        graph: bool = False,
        declared_check: str = "off",
    ) -> RunOutcome:
        """Convenience: compile, build, run, validate, aggregate.

        ``policy`` selects a scheduler placement policy (``cpu``, ``gpu``,
        ``auto``, ``hybrid``); when set, it overrides ``on_cpu`` and the
        runtime dispatches every construct through that policy.  ``graph``
        routes every construct through the task-graph runtime (deferred
        submission with conservative whole-region dependencies — results
        stay bit-identical; see ``docs/GRAPH.md``) and attaches the
        graph's accounting to the outcome.
        """
        rt = self.make_runtime(
            config,
            system,
            collect_mem_events,
            engine=engine,
            observer=observer,
            policy=policy or "gpu",
            graph=graph,
            declared_check=declared_check,
        )
        if policy is not None:
            on_cpu = False
        state = self.build(rt, scale)
        reports = self.run(rt, state, on_cpu=on_cpu)
        graph_stats = rt.wait() if graph else None
        if validate:
            self.validate(rt, state)
        if policy is not None:
            device = reports[0].device if reports else policy
        else:
            device = "cpu" if on_cpu else reports[0].device if reports else "gpu"
        return RunOutcome(
            workload=self.name,
            device=device,
            reports=reports,
            graph_stats=graph_stats,
        )


_REGISTRY: dict[str, type] = {}


def register(cls):
    _REGISTRY[cls.name] = cls
    return cls


def all_workloads() -> dict[str, type]:
    # populate on first use
    from . import (  # noqa: F401
        barneshut,
        bfs,
        btree,
        clothphysics,
        connectedcomponent,
        facedetect,
        raytracer,
        skiplist,
        sssp,
    )

    return dict(_REGISTRY)
