"""The nine irregular C++ workloads of the paper's evaluation (Table 1)."""

from .base import RunOutcome, Workload, all_workloads, register
from .inputs import (
    Graph,
    distinct_sorted_keys,
    integral_image,
    random_keys,
    road_network,
    synthetic_image,
)

__all__ = [
    "Graph",
    "RunOutcome",
    "Workload",
    "all_workloads",
    "distinct_sorted_keys",
    "integral_image",
    "random_keys",
    "register",
    "road_network",
    "synthetic_image",
]
