"""Synthetic input generators.

The paper's inputs (Western-USA road network, the Solvay-1927 conference
photo, 50M keys) are unavailable/oversized for interpreted simulation, so
these generators produce structurally equivalent scaled inputs:

* :func:`road_network` — a jittered grid with random shortcut edges: low
  average degree (~2.5), large diameter, irregular neighbour layout — the
  properties that make W-USA traversals irregular;
* :func:`synthetic_image` — a grayscale image with smooth background plus a
  few bright "face-like" blobs, used by FaceDetect's integral image;
* :func:`random_keys` — deterministic pseudo-random key sets for BTree and
  SkipList.

Everything is seeded for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class Graph:
    """CSR-style adjacency with edge weights."""

    num_nodes: int
    row_starts: list[int]
    columns: list[int]
    weights: list[int]

    @property
    def num_edges(self) -> int:
        return len(self.columns)

    def neighbours(self, node: int):
        start = self.row_starts[node]
        end = self.row_starts[node + 1]
        return zip(self.columns[start:end], self.weights[start:end])


def road_network(width: int, height: int, seed: int = 7, shortcut_fraction: float = 0.05) -> Graph:
    """Grid-with-shortcuts road network (directed, symmetric edges)."""
    rng = random.Random(seed)
    num_nodes = width * height
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(num_nodes)]

    def node_at(x: int, y: int) -> int:
        return y * width + x

    def connect(a: int, b: int, w: int) -> None:
        adjacency[a].append((b, w))
        adjacency[b].append((a, w))

    for y in range(height):
        for x in range(width):
            here = node_at(x, y)
            if x + 1 < width and rng.random() > 0.08:  # a few missing roads
                connect(here, node_at(x + 1, y), rng.randint(1, 20))
            if y + 1 < height and rng.random() > 0.08:
                connect(here, node_at(x, y + 1), rng.randint(1, 20))
    shortcuts = int(num_nodes * shortcut_fraction)
    for _ in range(shortcuts):
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        if a != b:
            connect(a, b, rng.randint(5, 60))

    row_starts = [0]
    columns: list[int] = []
    weights: list[int] = []
    for node in range(num_nodes):
        for target, weight in adjacency[node]:
            columns.append(target)
            weights.append(weight)
        row_starts.append(len(columns))
    return Graph(num_nodes, row_starts, columns, weights)


def synthetic_image(width: int, height: int, num_blobs: int = 12, seed: int = 11) -> list[list[int]]:
    """Grayscale image: smooth gradient background + bright square blobs
    (stand-ins for faces that make some cascade windows survive stages)."""
    rng = random.Random(seed)
    # Per-pixel texture noise matters: it makes neighbouring cascade
    # windows abort at different stages, which is what produces the
    # paper's intra-warp divergence for FaceDetect.
    image = [
        [((x * 7 + y * 13) % 64) + 32 + rng.randrange(120) for x in range(width)]
        for y in range(height)
    ]
    for _ in range(num_blobs):
        bw = rng.randint(3, max(4, width // 10))
        bx = rng.randrange(max(1, width - bw))
        by = rng.randrange(max(1, height - bw))
        level = rng.randint(170, 240)
        for y in range(by, min(height, by + bw)):
            for x in range(bx, min(width, bx + bw)):
                image[y][x] = level + ((x + y) % 16)
    return image


def integral_image(image: list[list[int]]) -> list[list[int]]:
    height = len(image)
    width = len(image[0])
    out = [[0] * (width + 1) for _ in range(height + 1)]
    for y in range(height):
        row_sum = 0
        for x in range(width):
            row_sum += image[y][x]
            out[y + 1][x + 1] = out[y][x + 1] + row_sum
    return out


def random_keys(count: int, universe: int, seed: int = 3) -> list[int]:
    rng = random.Random(seed)
    return [rng.randrange(universe) for _ in range(count)]


def distinct_sorted_keys(count: int, universe: int, seed: int = 5) -> list[int]:
    rng = random.Random(seed)
    keys = rng.sample(range(universe), count)
    keys.sort()
    return keys
