"""Breadth-first search (Table 1: Galois, W-USA road network, CSR graph).

Level-synchronized BFS: each ``parallel_for_hetero`` pass relaxes the
frontier at the current level; the host loops until no node changes.  The
compressed-row representation gives the data-dependent memory irregularity
the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.types import I32
from ..runtime import ConcordRuntime, ExecutionReport
from .base import Workload, register
from .graphs import SvmGraph, graph_to_svm
from .inputs import road_network

INFINITY = 1 << 30

SOURCE = """
class BfsBody {
public:
  int* row_starts;
  int* columns;
  int* dist;
  int* changed;
  int level;
  int num_nodes;

  void operator()(int i) {
    if (dist[i] == level) {
      int start = row_starts[i];
      int end = row_starts[i + 1];
      for (int e = start; e < end; e++) {
        int v = columns[e];
        if (dist[v] > level + 1) {
          dist[v] = level + 1;
          changed[0] = 1;
        }
      }
    }
  }
};
"""


@dataclass
class BfsState:
    svm_graph: SvmGraph
    dist: object
    changed: object
    body: object
    source_node: int


@register
class BfsWorkload(Workload):
    name = "BFS"
    origin = "Galois"
    data_structure = "graph"
    parallel_construct = "parallel_for_hetero"
    body_class = "BfsBody"
    input_description = "road network (grid + shortcuts), scaled W-USA analogue"
    source = SOURCE
    region_size = 1 << 24

    def make_graph(self, scale: float):
        side = max(4, int(24 * scale))
        return road_network(side, side)

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> BfsState:
        graph = self.make_graph(scale)
        svm_graph = graph_to_svm(rt, graph)
        dist = rt.new_array(I32, graph.num_nodes)
        dist.fill_from([INFINITY] * graph.num_nodes)
        source_node = 0
        dist[source_node] = 0
        changed = rt.new_array(I32, 1)
        body = rt.new("BfsBody")
        body.row_starts = svm_graph.row_starts
        body.columns = svm_graph.columns
        body.dist = dist
        body.changed = changed
        body.level = 0
        body.num_nodes = graph.num_nodes
        return BfsState(svm_graph, dist, changed, body, source_node)

    def run(self, rt, state: BfsState, on_cpu: bool = False) -> list[ExecutionReport]:
        reports = []
        graph = state.svm_graph.graph
        level = 0
        while True:
            state.changed[0] = 0
            state.body.level = level
            reports.append(
                rt.parallel_for_hetero(graph.num_nodes, state.body, on_cpu=on_cpu)
            )
            if state.changed[0] == 0:
                break
            level += 1
            if level > graph.num_nodes:
                raise RuntimeError("BFS failed to converge")
        return reports

    def validate(self, rt, state: BfsState) -> None:
        graph = state.svm_graph.graph
        expected = reference_bfs(graph, state.source_node)
        got = state.dist.to_list()
        for node in range(graph.num_nodes):
            want = expected[node] if expected[node] is not None else INFINITY
            assert got[node] == want, (node, got[node], want)


def reference_bfs(graph, source: int):
    from collections import deque

    dist = [None] * graph.num_nodes
    dist[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for target, _ in graph.neighbours(node):
            if dist[target] is None:
                dist[target] = dist[node] + 1
                queue.append(target)
    return dist
