"""Cloth soft-body simulation (Table 1: Intel's multi-core cloth demo,
graph of nodes joined by springs, parallel_reduce_hetero).

Cloth is a grid of mass points connected by structural and shear springs
stored as per-node neighbour lists (pointer-based, like the original).
Each step computes spring + gravity forces and integrates; the reduction
accumulates total kinetic energy (the Body's ``join`` adds partial sums),
mirroring how the original tracks convergence while it relaxes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ir.types import F32, I32
from ..runtime import ConcordRuntime, ExecutionReport
from .base import Workload, register

SPRING_K = 40.0
DAMPING = 0.97
GRAVITY = -0.8
DT = 0.016

SOURCE = """
class ClothNode {
public:
  float x; float y; float z;
  float vx; float vy; float vz;
  float inv_mass;                 // 0 for pinned nodes
  int num_springs;
  int first_spring;               // index into spring arrays
};

class StepBody {
public:
  ClothNode* nodes;
  int* spring_other;              // neighbour node index per spring
  float* spring_rest;             // rest length per spring
  float* new_vx; float* new_vy; float* new_vz;
  float kinetic;                  // reduction value

  void operator()(int i) {
    ClothNode* node = &nodes[i];
    float fx = 0.0f;
    float fy = -0.8f;
    float fz = 0.0f;
    int start = node->first_spring;
    int end = start + node->num_springs;
    for (int s = start; s < end; s++) {
      ClothNode* other = &nodes[spring_other[s]];
      float dx = other->x - node->x;
      float dy = other->y - node->y;
      float dz = other->z - node->z;
      float len = sqrtf(dx*dx + dy*dy + dz*dz + 0.000001f);
      float stretch = len - spring_rest[s];
      float f = 40.0f * stretch / len;
      fx += f * dx;
      fy += f * dy;
      fz += f * dz;
    }
    float vx = (node->vx + fx * 0.016f * node->inv_mass) * 0.97f;
    float vy = (node->vy + fy * 0.016f * node->inv_mass) * 0.97f;
    float vz = (node->vz + fz * 0.016f * node->inv_mass) * 0.97f;
    new_vx[i] = vx;
    new_vy[i] = vy;
    new_vz[i] = vz;
    kinetic += 0.5f * (vx*vx + vy*vy + vz*vz);
  }

  void join(StepBody& other) {
    kinetic += other.kinetic;
  }
};

class IntegrateBody {
public:
  ClothNode* nodes;
  float* new_vx; float* new_vy; float* new_vz;

  void operator()(int i) {
    ClothNode* node = &nodes[i];
    node->vx = new_vx[i];
    node->vy = new_vy[i];
    node->vz = new_vz[i];
    node->x += node->vx * 0.016f * (node->inv_mass > 0.0f ? 1.0f : 0.0f);
    node->y += node->vy * 0.016f * (node->inv_mass > 0.0f ? 1.0f : 0.0f);
    node->z += node->vz * 0.016f * (node->inv_mass > 0.0f ? 1.0f : 0.0f);
  }
};
"""


@dataclass
class ClothState:
    step_body: object
    integrate_body: object
    nodes: object
    width: int
    height: int
    steps: int
    springs: list
    kinetic_per_step: list


@register
class ClothPhysicsWorkload(Workload):
    name = "ClothPhysics"
    origin = "Intel"
    data_structure = "graph"
    parallel_construct = "parallel_reduce_hetero"
    body_class = "StepBody"
    input_description = "grid cloth with structural + shear springs"
    source = SOURCE
    region_size = 1 << 24

    def grid(self, scale: float) -> tuple[int, int, int]:
        side = max(6, int(16 * scale))
        steps = max(2, int(4 * scale))
        return side, side, steps

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> ClothState:
        width, height, steps = self.grid(scale)
        n = width * height

        springs_per_node: list[list[tuple[int, float]]] = [[] for _ in range(n)]

        def node_at(x, y):
            return y * width + x

        spacing = 1.0 / max(width - 1, 1)
        for y in range(height):
            for x in range(width):
                here = node_at(x, y)
                neighbours = [
                    (x + 1, y, spacing),
                    (x - 1, y, spacing),
                    (x, y + 1, spacing),
                    (x, y - 1, spacing),
                    (x + 1, y + 1, spacing * math.sqrt(2)),
                    (x - 1, y + 1, spacing * math.sqrt(2)),
                    (x + 1, y - 1, spacing * math.sqrt(2)),
                    (x - 1, y - 1, spacing * math.sqrt(2)),
                ]
                for nx, ny, rest in neighbours:
                    if 0 <= nx < width and 0 <= ny < height:
                        springs_per_node[here].append((node_at(nx, ny), rest))

        flat_other: list[int] = []
        flat_rest: list[float] = []
        nodes = rt.new_array("ClothNode", n)
        for index in range(n):
            x = index % width
            y = index // width
            node = nodes[index]
            node.x = x * spacing
            node.y = 0.0
            node.z = y * spacing
            node.inv_mass = 0.0 if (y == 0 and (x == 0 or x == width - 1)) else 1.0
            node.first_spring = len(flat_other)
            node.num_springs = len(springs_per_node[index])
            for other, rest in springs_per_node[index]:
                flat_other.append(other)
                flat_rest.append(rest)

        spring_other = rt.new_array(I32, len(flat_other))
        spring_other.fill_from(flat_other)
        spring_rest = rt.new_array(F32, len(flat_rest))
        spring_rest.fill_from(flat_rest)
        new_vx = rt.new_array(F32, n)
        new_vy = rt.new_array(F32, n)
        new_vz = rt.new_array(F32, n)

        step_body = rt.new("StepBody")
        step_body.nodes = nodes
        step_body.spring_other = spring_other
        step_body.spring_rest = spring_rest
        step_body.new_vx = new_vx
        step_body.new_vy = new_vy
        step_body.new_vz = new_vz
        step_body.kinetic = 0.0

        integrate_body = rt.new("IntegrateBody")
        integrate_body.nodes = nodes
        integrate_body.new_vx = new_vx
        integrate_body.new_vy = new_vy
        integrate_body.new_vz = new_vz

        springs = [list(s) for s in springs_per_node]
        return ClothState(
            step_body, integrate_body, nodes, width, height, steps, springs, []
        )

    def run(self, rt, state: ClothState, on_cpu: bool = False) -> list[ExecutionReport]:
        n = state.width * state.height
        reports = []
        state.kinetic_per_step.clear()
        for _ in range(state.steps):
            state.step_body.kinetic = 0.0
            reports.append(
                rt.parallel_reduce_hetero(n, state.step_body, on_cpu=on_cpu)
            )
            state.kinetic_per_step.append(state.step_body.kinetic)
            reports.append(
                rt.parallel_for_hetero(n, state.integrate_body, on_cpu=on_cpu)
            )
        return reports

    def validate(self, rt, state: ClothState) -> None:
        # Energy must be finite and positive once the cloth starts falling,
        # and pinned corners must not move.
        assert all(math.isfinite(k) for k in state.kinetic_per_step)
        assert state.kinetic_per_step[-1] > 0.0
        top_left = state.nodes[0]
        assert top_left.x == 0.0 and top_left.y == 0.0
        # unpinned nodes fell (y decreased under gravity)
        middle = state.nodes[state.width * (state.height // 2) + state.width // 2]
        assert middle.y < 0.0
