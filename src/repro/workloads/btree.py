"""BTree search (Table 1: Rodinia, n-ary search tree with records at the
leaves).

The tree is built host-side out of pointer-linked nodes in SVM; the kernel
descends from the root for each query key.  Unbalanced fill makes the
search paths irregular, as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.types import I32
from ..runtime import ConcordRuntime, ExecutionReport
from .base import Workload, register
from .inputs import distinct_sorted_keys, random_keys

ORDER = 8  # max keys per node

SOURCE = """
class BTreeNode {
public:
  int keys[8];
  int num_keys;
  int is_leaf;
  BTreeNode* children[9];
  int values[8];
};

class SearchBody {
public:
  BTreeNode* root;
  int* queries;
  int* results;

  void operator()(int i) {
    int key = queries[i];
    BTreeNode* node = root;
    int found = -1;
    while (found == -1 && node != 0) {
      int k = 0;
      while (k < node->num_keys && key > node->keys[k]) {
        k++;
      }
      if (k < node->num_keys && node->keys[k] == key) {
        found = node->values[k];
        if (node->is_leaf == 0) {
          found = -1;
          node = node->children[k + 1];
        }
      } else if (node->is_leaf != 0) {
        node = 0;
      } else {
        node = node->children[k];
      }
    }
    results[i] = found;
  }
};
"""


@dataclass
class BTreeState:
    body: object
    queries: list[int]
    results: object
    table: dict[int, int]


@register
class BTreeWorkload(Workload):
    name = "BTree"
    origin = "Rodinia"
    data_structure = "tree"
    parallel_construct = "parallel_for_hetero"
    body_class = "SearchBody"
    input_description = "n-ary search tree with records on the leaves"
    source = SOURCE
    region_size = 1 << 24

    def sizes(self, scale: float) -> tuple[int, int]:
        keys = max(64, int(2000 * scale))
        queries = max(32, int(512 * scale))
        return keys, queries

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> BTreeState:
        num_keys, num_queries = self.sizes(scale)
        keys = distinct_sorted_keys(num_keys, num_keys * 8)
        table = {key: key * 2 + 1 for key in keys}
        root = _bulk_load(rt, keys, table)
        half_hits = random_keys(num_queries, num_keys * 8, seed=21)
        queries = [
            keys[q % len(keys)] if q % 2 == 0 else half_hits[q]
            for q in range(num_queries)
        ]
        queries_arr = rt.new_array(I32, num_queries)
        queries_arr.fill_from(queries)
        results = rt.new_array(I32, num_queries)
        body = rt.new("SearchBody")
        body.root = root
        body.queries = queries_arr
        body.results = results
        return BTreeState(body, queries, results, table)

    def run(self, rt, state: BTreeState, on_cpu: bool = False) -> list[ExecutionReport]:
        return [
            rt.parallel_for_hetero(len(state.queries), state.body, on_cpu=on_cpu)
        ]

    def validate(self, rt, state: BTreeState) -> None:
        got = state.results.to_list()
        for index, key in enumerate(state.queries):
            want = state.table.get(key, -1)
            assert got[index] == want, (index, key, got[index], want)


def _bulk_load(rt: ConcordRuntime, sorted_keys: list[int], table) -> object:
    """Build a leaf-valued search tree bottom-up from sorted keys."""

    def new_node():
        node = rt.new("BTreeNode")
        node.num_keys = 0
        node.is_leaf = 1
        return node

    # leaves: chunks of up to ORDER keys, deliberately uneven (alternating
    # chunk sizes) so search depth varies -> irregular paths
    leaves = []
    index = 0
    toggle = 0
    while index < len(sorted_keys):
        size = ORDER if toggle % 3 else max(2, ORDER // 2)
        chunk = sorted_keys[index : index + size]
        index += size
        toggle += 1
        leaf = new_node()
        leaf.num_keys = len(chunk)
        keys_view = leaf.view("keys")
        values_view = leaf.view("values")
        for pos, key in enumerate(chunk):
            keys_view[pos] = key
            values_view[pos] = table[key]
        leaves.append((chunk[0], leaf))

    level = leaves
    while len(level) > 1:
        parents = []
        index = 0
        while index < len(level):
            group = level[index : index + ORDER + 1]
            index += ORDER + 1
            parent = new_node()
            parent.is_leaf = 0
            children_view = parent.view("children")
            keys_view = parent.view("keys")
            children_view[0] = group[0][1].addr
            for pos, (sep_key, child) in enumerate(group[1:]):
                keys_view[pos] = sep_key
                children_view[pos + 1] = child.addr
            parent.num_keys = len(group) - 1
            parents.append((group[0][0], parent))
        level = parents
    return level[0][1]
