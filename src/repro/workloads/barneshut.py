"""Barnes-Hut n-body force computation (Table 1: in-house, octree).

The host builds an octree over the bodies; force calculation is offloaded.
Because the GPU-side model forbids recursion and address-of-local (no
explicit stack), the tree carries *rope* pointers — each node has ``more``
(first child, taken when the cell must be opened) and ``next`` (skip the
subtree) — the standard GPU-friendly threaded traversal.  The octree is
unbalanced and traversal order is data-dependent: highly irregular, as the
paper says.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..ir.types import F32
from ..runtime import ConcordRuntime, ExecutionReport
from .base import Workload, register

THETA = 0.6
SOFTENING = 0.05

SOURCE = """
class OctNode {
public:
  float cx; float cy; float cz;   // center of mass
  float mass;
  float size;                      // cell side length
  int body_index;                  // >= 0 for leaves holding one body
  OctNode* more;                   // first child (open the cell)
  OctNode* next;                   // skip the subtree
};

class ForceBody {
public:
  OctNode* root;
  float* px; float* py; float* pz;
  float* ax; float* ay; float* az;
  float theta2;

  void operator()(int i) {
    float x = px[i];
    float y = py[i];
    float z = pz[i];
    float fx = 0.0f;
    float fy = 0.0f;
    float fz = 0.0f;
    OctNode* node = root;
    while (node != 0) {
      float dx = node->cx - x;
      float dy = node->cy - y;
      float dz = node->cz - z;
      float d2 = dx*dx + dy*dy + dz*dz + 0.0025f;
      if (node->body_index == i && node->more == 0) {
        node = node->next;            // skip self
      } else if (node->more == 0 || node->size * node->size < theta2 * d2) {
        float inv = rsqrtf(d2);
        float f = node->mass * inv * inv * inv;
        fx += f * dx;
        fy += f * dy;
        fz += f * dz;
        node = node->next;            // far enough: approximate
      } else {
        node = node->more;            // open the cell
      }
    }
    ax[i] = fx;
    ay[i] = fy;
    az[i] = fz;
  }
};
"""


@dataclass
class _PyNode:
    cx: float = 0.0
    cy: float = 0.0
    cz: float = 0.0
    mass: float = 0.0
    size: float = 0.0
    body_index: int = -1
    children: list = None


@dataclass
class BarnesHutState:
    body: object
    positions: list[tuple[float, float, float]]
    masses: list[float]
    ax: object
    ay: object
    az: object


@register
class BarnesHutWorkload(Workload):
    name = "BarnesHut"
    origin = "In-house"
    data_structure = "tree"
    parallel_construct = "parallel_for_hetero"
    body_class = "ForceBody"
    input_description = "clustered n-body distribution in an octree"
    source = SOURCE
    region_size = 1 << 24

    def num_bodies(self, scale: float) -> int:
        return max(32, int(400 * scale))

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> BarnesHutState:
        n = self.num_bodies(scale)
        rng = random.Random(41)
        positions = []
        masses = []
        # Plummer-ish clusters: nonuniform density -> unbalanced octree.
        centers = [(0.2, 0.2, 0.2), (0.7, 0.6, 0.8), (0.5, 0.9, 0.3)]
        for i in range(n):
            cx, cy, cz = centers[i % len(centers)]
            positions.append(
                (
                    min(0.999, max(0.001, rng.gauss(cx, 0.08))),
                    min(0.999, max(0.001, rng.gauss(cy, 0.08))),
                    min(0.999, max(0.001, rng.gauss(cz, 0.08))),
                )
            )
            masses.append(0.5 + rng.random())

        root = _build_octree(positions, masses)
        svm_root = _emit_ropes(rt, root)

        px = rt.new_array(F32, n)
        py = rt.new_array(F32, n)
        pz = rt.new_array(F32, n)
        ax = rt.new_array(F32, n)
        ay = rt.new_array(F32, n)
        az = rt.new_array(F32, n)
        px.fill_from(p[0] for p in positions)
        py.fill_from(p[1] for p in positions)
        pz.fill_from(p[2] for p in positions)

        body = rt.new("ForceBody")
        body.root = svm_root
        body.px = px
        body.py = py
        body.pz = pz
        body.ax = ax
        body.ay = ay
        body.az = az
        body.theta2 = THETA * THETA
        return BarnesHutState(body, positions, masses, ax, ay, az)

    def run(self, rt, state: BarnesHutState, on_cpu: bool = False) -> list[ExecutionReport]:
        n = len(state.positions)
        return [rt.parallel_for_hetero(n, state.body, on_cpu=on_cpu)]

    def validate(self, rt, state: BarnesHutState) -> None:
        # Barnes-Hut approximates; check against the same approximation
        # computed in Python (identical traversal), and sanity-check the
        # direction against exact n-body for a few bodies.
        n = len(state.positions)
        root = _build_octree(state.positions, state.masses)
        got = list(zip(state.ax.to_list(), state.ay.to_list(), state.az.to_list()))
        for i in list(range(min(8, n))) + [n - 1]:
            want = _reference_force(root, state.positions[i], i)
            for axis in range(3):
                assert math.isfinite(got[i][axis])
                assert abs(got[i][axis] - want[axis]) <= 1e-3 * max(
                    1.0, abs(want[axis])
                ), (i, axis, got[i][axis], want[axis])


def _build_octree(positions, masses) -> _PyNode:
    root = _PyNode(size=1.0, children=None)
    bounds = (0.0, 0.0, 0.0, 1.0)

    def insert(node, index, x0, y0, z0, size):
        x, y, z = positions[index]
        if node.body_index == -1 and node.children is None and node.mass == 0.0:
            node.body_index = index
            node.cx, node.cy, node.cz = x, y, z
            node.mass = masses[index]
            node.size = size
            return
        if node.children is None:
            node.children = [None] * 8
            old = node.body_index
            node.body_index = -1
            if old is not None and old >= 0:
                _push_down(node, old, x0, y0, z0, size)
        _push_down(node, index, x0, y0, z0, size)

    def _push_down(node, index, x0, y0, z0, size):
        x, y, z = positions[index]
        half = size / 2.0
        octant = (
            (1 if x >= x0 + half else 0)
            + (2 if y >= y0 + half else 0)
            + (4 if z >= z0 + half else 0)
        )
        ox = x0 + (half if octant & 1 else 0.0)
        oy = y0 + (half if octant & 2 else 0.0)
        oz = z0 + (half if octant & 4 else 0.0)
        child = node.children[octant]
        if child is None:
            child = _PyNode(size=half, children=None)
            node.children[octant] = child
        insert(child, index, ox, oy, oz, half)

    for index in range(len(positions)):
        insert(root, index, 0.0, 0.0, 0.0, 1.0)

    def summarize(node):
        if node.children is None:
            return node.mass, node.cx * node.mass, node.cy * node.mass, node.cz * node.mass
        total = wx = wy = wz = 0.0
        for child in node.children:
            if child is None:
                continue
            m, cwx, cwy, cwz = summarize(child)
            total += m
            wx += cwx
            wy += cwy
            wz += cwz
        node.mass = total
        if total > 0:
            node.cx, node.cy, node.cz = wx / total, wy / total, wz / total
        return total, wx, wy, wz

    summarize(root)
    return root


def _emit_ropes(rt: ConcordRuntime, root: _PyNode):
    """Materialize the octree in SVM with more/next rope pointers."""

    def emit(node, next_view_addr):
        view = rt.new("OctNode")
        view.cx, view.cy, view.cz = node.cx, node.cy, node.cz
        view.mass = node.mass
        view.size = node.size
        view.body_index = node.body_index if node.body_index is not None else -1
        view.next = next_view_addr
        if node.children is None:
            view.more = 0
        else:
            kids = [c for c in node.children if c is not None]
            follow = next_view_addr
            child_addrs = []
            for child in reversed(kids):
                child_view_addr = emit(child, follow)
                follow = child_view_addr
                child_addrs.append(child_view_addr)
            view.more = follow if kids else 0
        return view.addr

    return rt.view("OctNode", emit(root, 0))


def _reference_force(root: _PyNode, position, self_index):
    x, y, z = position
    fx = fy = fz = 0.0

    stack = [root]
    while stack:
        node = stack.pop()
        dx = node.cx - x
        dy = node.cy - y
        dz = node.cz - z
        d2 = dx * dx + dy * dy + dz * dz + 0.0025
        is_leaf = node.children is None
        if is_leaf and node.body_index == self_index:
            continue
        if is_leaf or node.size * node.size < THETA * THETA * d2:
            inv = 1.0 / math.sqrt(d2)
            f = node.mass * inv * inv * inv
            fx += f * dx
            fy += f * dy
            fz += f * dz
        else:
            for child in node.children:
                if child is not None:
                    stack.append(child)
    return fx, fy, fz
