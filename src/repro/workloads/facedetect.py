"""Face detection with a Haar-like cascade (Table 1: OpenCV-style).

A cascade of stages is trained synthetically over a generated image: each
stage holds a few rectangle features evaluated on the integral image; a
window either passes to the next stage or aborts.  As in the paper, most
windows abort in the first stages while a few (the bright blobs) survive
through all of them — the "highly dynamic behaviour ... not well-suited
for GPUs" that makes FaceDetect the one workload where GPU execution costs
more energy than the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.types import I32, I64
from ..runtime import ConcordRuntime, ExecutionReport
from .base import Workload, register
from .inputs import integral_image, synthetic_image

NUM_STAGES = 22
FEATURES_PER_STAGE = 3
WINDOW = 8

SOURCE = """
class HaarFeature {
public:
  int x0; int y0; int x1; int y1;    // bright rect (window-relative)
  int dx0; int dy0; int dx1; int dy1; // dark rect
  float weight;
};

class CascadeStage {
public:
  HaarFeature* features;
  int num_features;
  float threshold;
};

class Cascade {
public:
  CascadeStage* stages;
  int num_stages;
  int window;
};

class DetectBody {
public:
  Cascade* cascade;
  long* integral;                  // (width+1) x (height+1)
  int stride;                      // width + 1
  int width; int height;           // valid window origins
  int* hits;                       // output: stages passed per window

  float rect_sum(int bx, int by, int x0, int y0, int x1, int y1) {
    long a = integral[(by + y0) * stride + (bx + x0)];
    long b = integral[(by + y0) * stride + (bx + x1)];
    long c = integral[(by + y1) * stride + (bx + x0)];
    long d = integral[(by + y1) * stride + (bx + x1)];
    return (float)(d - b - c + a);
  }

  void operator()(int i) {
    int bx = i % width;
    int by = i / width;
    Cascade* c = cascade;
    int stage = 0;
    int alive = 1;
    while (alive == 1 && stage < c->num_stages) {
      CascadeStage* s = &c->stages[stage];
      float score = 0.0f;
      for (int f = 0; f < s->num_features; f++) {
        HaarFeature* feat = &s->features[f];
        float bright = rect_sum(bx, by, feat->x0, feat->y0, feat->x1, feat->y1);
        float dark = rect_sum(bx, by, feat->dx0, feat->dy0, feat->dx1, feat->dy1);
        score += feat->weight * (bright - dark);
      }
      if (score < s->threshold) {
        alive = 0;
      } else {
        stage++;
      }
    }
    hits[i] = stage;
  }
};
"""


@dataclass
class FaceDetectState:
    body: object
    hits: object
    image: list
    integral: list
    stages_py: list
    width: int
    height: int


@register
class FaceDetectWorkload(Workload):
    name = "FaceDetect"
    origin = "OpenCV"
    data_structure = "cascade"
    parallel_construct = "parallel_for_hetero"
    body_class = "DetectBody"
    input_description = "synthetic image, 22-stage Haar cascade"
    source = SOURCE
    region_size = 1 << 24

    def image_size(self, scale: float) -> tuple[int, int]:
        width = max(24, int(48 * scale))
        height = max(20, int(40 * scale))
        return width, height

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> FaceDetectState:
        width, height = self.image_size(scale)
        image = synthetic_image(width, height)
        ii = integral_image(image)
        stride = width + 1

        flat = rt.new_array(I64, (width + 1) * (height + 1))
        flat.fill_from(v for row in ii for v in row)

        # Synthetic cascade shaped like a trained OpenCV one: stage 0
        # rejects ~40% of windows outright, every later stage passes ~85%
        # of its survivors, producing a geometric depth distribution (mean
        # ~3-4 stages, a thin tail running all 22).  Each stage uses its
        # own jittered rectangles so stage outcomes decorrelate — survival
        # is driven by per-window texture, which scatters the deep windows
        # across the image and therefore across SIMD warps.  That is the
        # "highly dynamic behaviour" that ruins GPU lane utilization in
        # the paper.
        import random as _random

        stages_py = []
        for stage in range(NUM_STAGES):
            rng = _random.Random(1000 + stage)
            features = []
            for f in range(FEATURES_PER_STAGE):
                w = rng.randint(2, WINDOW // 2)
                h = rng.randint(2, WINDOW // 2)
                bx0 = rng.randint(0, WINDOW - w)
                by0 = rng.randint(0, WINDOW - h)
                dx0 = rng.randint(0, WINDOW - w)
                dy0 = rng.randint(0, WINDOW - h)
                bright = (bx0, by0, bx0 + w, by0 + h)
                dark = (dx0, dy0, dx0 + w, dy0 + h)
                features.append((bright, dark, 1.0 / (1 + f)))
            threshold = -47.0 if stage == 0 else -180.0
            stages_py.append((features, threshold))

        feature_views = rt.new_array("HaarFeature", NUM_STAGES * FEATURES_PER_STAGE)
        stage_views = rt.new_array("CascadeStage", NUM_STAGES)
        index = 0
        for stage, (features, threshold) in enumerate(stages_py):
            stage_view = stage_views[stage]
            stage_view.features = feature_views.element_address(index)
            stage_view.num_features = len(features)
            stage_view.threshold = threshold
            for bright, dark, weight in features:
                fv = feature_views[index]
                fv.x0, fv.y0, fv.x1, fv.y1 = bright
                fv.dx0, fv.dy0, fv.dx1, fv.dy1 = dark
                fv.weight = weight
                index += 1

        cascade = rt.new("Cascade")
        cascade.stages = stage_views.addr
        cascade.num_stages = NUM_STAGES
        cascade.window = WINDOW

        out_width = width - WINDOW
        out_height = height - WINDOW
        hits = rt.new_array(I32, out_width * out_height)
        body = rt.new("DetectBody")
        body.cascade = cascade
        body.integral = flat
        body.stride = stride
        body.width = out_width
        body.height = out_height
        body.hits = hits
        return FaceDetectState(body, hits, image, ii, stages_py, out_width, out_height)

    def run(self, rt, state: FaceDetectState, on_cpu: bool = False) -> list[ExecutionReport]:
        n = state.width * state.height
        return [rt.parallel_for_hetero(n, state.body, on_cpu=on_cpu)]

    def validate(self, rt, state: FaceDetectState) -> None:
        got = state.hits.to_list()
        # exact check against the Python reference on a sample of windows
        sample = range(0, len(got), max(1, len(got) // 200))
        for index in sample:
            bx = index % state.width
            by = index // state.width
            want = _reference_stages(state.integral, state.stages_py, bx, by)
            assert got[index] == want, (index, got[index], want)
        # divergence sanity: the cascade must actually discriminate
        assert min(got) < NUM_STAGES
        assert max(got) > 1


def _rect_sum(ii, bx, by, x0, y0, x1, y1) -> int:
    return (
        ii[by + y1][bx + x1]
        - ii[by + y0][bx + x1]
        - ii[by + y1][bx + x0]
        + ii[by + y0][bx + x0]
    )


def _reference_stages(ii, stages_py, bx, by) -> int:
    import struct

    def f32(x):
        return struct.unpack("f", struct.pack("f", x))[0]

    stage = 0
    for features, threshold in stages_py:
        score = 0.0
        for bright, dark, weight in features:
            b = _rect_sum(ii, bx, by, *bright)
            d = _rect_sum(ii, bx, by, *dark)
            score = f32(score + f32(f32(weight) * f32(float(b) - float(d))))
        if score < f32(threshold):
            return stage
        stage += 1
    return stage
