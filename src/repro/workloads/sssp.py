"""Single-source shortest path via Bellman-Ford (Table 1: Galois, W-USA,
weighted directed graph).

Rounds of edge relaxation over all nodes with ``atomic_min`` on distances;
the host iterates until a fixpoint.  Memory access patterns depend on the
input graph — the irregularity the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.types import I32
from ..runtime import ConcordRuntime, ExecutionReport
from .base import Workload, register
from .graphs import SvmGraph, graph_to_svm
from .inputs import road_network

INFINITY = 1 << 29

SOURCE = """
class SsspBody {
public:
  int* row_starts;
  int* columns;
  int* weights;
  int* dist;
  int* changed;

  void operator()(int i) {
    int my_dist = dist[i];
    if (my_dist < (1 << 29)) {
      int start = row_starts[i];
      int end = row_starts[i + 1];
      for (int e = start; e < end; e++) {
        int v = columns[e];
        int cand = my_dist + weights[e];
        int old = atomic_min(&dist[v], cand);
        if (cand < old) {
          changed[0] = 1;
        }
      }
    }
  }
};
"""


@dataclass
class SsspState:
    svm_graph: SvmGraph
    dist: object
    changed: object
    body: object
    source_node: int


@register
class SsspWorkload(Workload):
    name = "SSSP"
    origin = "Galois"
    data_structure = "graph"
    parallel_construct = "parallel_for_hetero"
    body_class = "SsspBody"
    input_description = "weighted road network (grid + shortcuts)"
    source = SOURCE
    region_size = 1 << 24

    def make_graph(self, scale: float):
        side = max(4, int(20 * scale))
        return road_network(side, side, seed=13)

    def build(self, rt: ConcordRuntime, scale: float = 1.0) -> SsspState:
        graph = self.make_graph(scale)
        svm_graph = graph_to_svm(rt, graph)
        dist = rt.new_array(I32, graph.num_nodes)
        dist.fill_from([INFINITY] * graph.num_nodes)
        dist[0] = 0
        changed = rt.new_array(I32, 1)
        body = rt.new("SsspBody")
        body.row_starts = svm_graph.row_starts
        body.columns = svm_graph.columns
        body.weights = svm_graph.weights
        body.dist = dist
        body.changed = changed
        return SsspState(svm_graph, dist, changed, body, 0)

    def run(self, rt, state: SsspState, on_cpu: bool = False) -> list[ExecutionReport]:
        reports = []
        graph = state.svm_graph.graph
        for _ in range(graph.num_nodes):
            state.changed[0] = 0
            reports.append(
                rt.parallel_for_hetero(graph.num_nodes, state.body, on_cpu=on_cpu)
            )
            if state.changed[0] == 0:
                break
        else:
            raise RuntimeError("negative cycle? Bellman-Ford did not converge")
        return reports

    def validate(self, rt, state: SsspState) -> None:
        graph = state.svm_graph.graph
        expected = reference_sssp(graph, state.source_node)
        got = state.dist.to_list()
        for node in range(graph.num_nodes):
            want = expected[node] if expected[node] is not None else INFINITY
            assert got[node] == want, (node, got[node], want)


def reference_sssp(graph, source: int):
    import heapq

    dist = [None] * graph.num_nodes
    dist[source] = 0
    heap = [(0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if dist[node] is not None and d > dist[node]:
            continue
        for target, weight in graph.neighbours(node):
            cand = d + weight
            if dist[target] is None or cand < dist[target]:
                dist[target] = cand
                heapq.heappush(heap, (cand, target))
    return dist
