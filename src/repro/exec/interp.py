"""Scalar IR interpreter with execution-trace collection.

One interpreter serves three roles:

* functional execution of kernels on the simulated **GPU** (one invocation
  per work-item, strict surface-window address checks, SVM translation
  intrinsics applied);
* functional execution of the same IR on the simulated **CPU** (native CPU
  virtual addresses, no translation);
* **host-side** calls (constructors, sequential ``join`` fallback).

While executing it records an :class:`ExecTrace` per invocation — dynamic
instruction count, per-block execution counts, memory access events and
per-branch outcome statistics.  The device timing models
(:mod:`repro.gpu.timing`, :mod:`repro.cpu.timing`) are pure functions of
these traces, which keeps functional correctness and performance modelling
cleanly separated.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..ir import Constant, Function, Instruction
from ..ir.intrinsics import MATH_EVAL
from ..ir.types import FloatType, IntType, PointerType, VoidType
from ..svm.memory import MemoryFault
from ..svm.region import SharedRegion
from .buffers import DEFAULT_MEM_EVENT_CAP, PrivateMemoryPool


class ExecutionError(Exception):
    pass


@dataclass
class MemEvent:
    """One dynamic memory access (for the cache/coalescing models)."""

    instr_uid: int
    seq: int  # k-th dynamic execution of this instruction in this lane
    address: int  # CPU-space virtual address
    size: int
    is_store: bool


@dataclass
class ExecTrace:
    """Per-invocation execution trace.

    ``mem_events`` is either a plain list of :class:`MemEvent` (the
    reference interpreter's representation) or a columnar
    :class:`~repro.exec.buffers.MemEventColumns` buffer (the threaded-code
    engine's); both support ``append``/``len``/iteration, and the timing
    models stream either through
    :func:`~repro.exec.buffers.iter_mem_events`.

    ``mem_event_cap`` defaults to :data:`DEFAULT_MEM_EVENT_CAP`, the same
    constant :class:`~repro.runtime.runtime.ConcordRuntime` is built with
    and threads into every trace it creates.
    """

    instructions: int = 0
    block_counts: dict = field(default_factory=dict)  # block uid -> count
    branch_stats: dict = field(default_factory=dict)  # instr uid -> [taken, total]
    mem_events: list = field(default_factory=list)
    mem_event_cap: int = DEFAULT_MEM_EVENT_CAP
    mem_events_dropped: int = 0
    flops: int = 0
    int_ops: int = 0
    translations: int = 0  # svm.to_gpu/to_cpu executed (PTROPT removes these)
    calls: int = 0

    def record_mem(self, event: MemEvent) -> None:
        if len(self.mem_events) < self.mem_event_cap:
            self.mem_events.append(event)
        else:
            self.mem_events_dropped += 1

    def merge(self, other: "ExecTrace") -> None:
        """Fold ``other`` into this trace: counters add, and ``other``'s
        memory events are appended up to this trace's cap (events beyond
        the cap are counted in ``mem_events_dropped``, exactly like events
        recorded directly)."""
        self.instructions += other.instructions
        for uid, count in other.block_counts.items():
            self.block_counts[uid] = self.block_counts.get(uid, 0) + count
        for uid, (taken, total) in other.branch_stats.items():
            mine = self.branch_stats.setdefault(uid, [0, 0])
            mine[0] += taken
            mine[1] += total
        for event in other.mem_events:
            self.record_mem(event)
        self.flops += other.flops
        self.int_ops += other.int_ops
        self.translations += other.translations
        self.calls += other.calls
        self.mem_events_dropped += other.mem_events_dropped


_FLOAT_OPS = frozenset("fadd fsub fmul fdiv frem fcmp".split())

_MAX_CALL_DEPTH = 200
_MAX_STEPS_DEFAULT = 500_000_000


@dataclass
class AddressSpace:
    """How the interpreter resolves virtual addresses to shared memory.

    ``gpu`` mode enforces the surface window and maps GPU virtual
    addresses; ``cpu`` mode maps CPU virtual addresses directly.
    """

    region: SharedRegion
    device: str  # "cpu" | "gpu"

    def to_physical(self, address: int, nbytes: int) -> int:
        if self.device == "gpu":
            return self.region.gpu_to_physical(address, nbytes)
        return self.region.cpu_to_physical(address, nbytes)


class Interpreter:
    """Executes IR functions over a :class:`SharedRegion`."""

    def __init__(
        self,
        region: SharedRegion,
        device: str = "cpu",
        trace: Optional[ExecTrace] = None,
        max_steps: int = _MAX_STEPS_DEFAULT,
        collect_mem_events: bool = True,
        global_id: int = 0,
        num_cores: int = 1,
        symbols: Optional[dict[int, object]] = None,
        allocator=None,
        private_pool: Optional[PrivateMemoryPool] = None,
        counters=None,
    ):
        self.region = region
        self.space = AddressSpace(region, device)
        self.device = device
        self.trace = trace if trace is not None else ExecTrace()
        self.max_steps = max_steps
        self.collect_mem_events = collect_mem_events
        self.global_id = global_id
        self.num_cores = num_cores
        # symbol id -> Function, for CPU-side virtual dispatch through
        # vtables materialized in the shared region by the loader
        self.symbols = symbols or {}
        # shared-heap allocator for host-side svm.malloc/svm.free
        self.allocator = allocator
        # Optional repro.obs.CounterRegistry; counts one engine.invocations
        # per top-level call_function (per-instruction totals come from the
        # trace, which the runtime harvests per construct).
        self.counters = counters
        self._steps = 0
        self._pool = private_pool
        self._priv_buf: Optional[bytearray] = None
        self._priv_dirty = 0
        self._private_next = 0x1000
        self._mem_seq: dict[int, int] = {}

    # -- public entry points -------------------------------------------------

    def call_function(self, function: Function, args: list) -> object:
        if len(args) != len(function.args):
            raise ExecutionError(
                f"{function.name}: expected {len(function.args)} args, "
                f"got {len(args)}"
            )
        if self.counters is not None:
            self.counters.add("engine.invocations")
            self.counters.add(f"engine.invocations.{self.device}")
        return self._run(function, args, depth=0)

    # -- private memory (alloca) ----------------------------------------------
    #
    # Private (per-thread) memory is modelled outside the shared region:
    # addresses in [PRIVATE_BASE, PRIVATE_BASE + window) index a per-
    # invocation bytearray.  This matches the paper: stack objects are
    # promoted to private GPU memory and need no SVM translation.

    PRIVATE_BASE = 0x0000_1000_0000_0000
    PRIVATE_WINDOW = 1 << 20

    def _alloc_private(self, size: int) -> int:
        addr = self.PRIVATE_BASE + self._private_next
        self._private_next = (self._private_next + size + 15) & ~15
        return addr

    def _is_private(self, address: int) -> bool:
        return (
            self.PRIVATE_BASE
            <= address
            < self.PRIVATE_BASE + self.PRIVATE_WINDOW + 0x1000
        )

    def _private_bytes(self) -> bytearray:
        buf = self._priv_buf
        if buf is None:
            if self._pool is not None:
                buf = self._pool.acquire()
            else:
                buf = bytearray(self.PRIVATE_WINDOW + 0x1000)
            self._priv_buf = buf
        return buf

    def release_private_memory(self) -> None:
        """Return the private-memory buffer to the pool (no-op without a
        pool or if no alloca ever touched private memory).  The buffer is
        re-zeroed up to the dirty high-water mark, so the next acquirer
        observes exactly the all-zero state a fresh buffer would have."""
        if self._pool is not None and self._priv_buf is not None:
            self._pool.release(self._priv_buf, self._priv_dirty)
            self._priv_buf = None
            self._priv_dirty = 0

    # -- memory access ---------------------------------------------------------

    def load_scalar(self, address: int, type_) -> object:
        size = type_.size()
        if self._is_private(address):
            off = address - self.PRIVATE_BASE
            raw = bytes(self._private_bytes()[off : off + size])
            return _decode_scalar(raw, type_)
        physical = self.space.to_physical(address, size)
        raw = self.region.physical.read_bytes(physical, size)
        return _decode_scalar(raw, type_)

    def store_scalar(self, address: int, type_, value) -> None:
        size = type_.size()
        raw = _encode_scalar(value, type_)
        if self._is_private(address):
            off = address - self.PRIVATE_BASE
            self._private_bytes()[off : off + size] = raw
            if off + size > self._priv_dirty:
                self._priv_dirty = off + size
            return
        physical = self.space.to_physical(address, size)
        self.region.physical.write_bytes(physical, raw)

    def _canonical_cpu_address(self, address: int) -> int:
        """Normalize an address to CPU space for trace events so CPU and
        GPU runs of the same program produce comparable access streams."""
        if self.device == "gpu" and self.region.surface.contains(address):
            return self.region.gpu_to_cpu(address)
        return address

    # -- execution -------------------------------------------------------------

    def _run(self, function: Function, args: list, depth: int) -> object:
        if depth > _MAX_CALL_DEPTH:
            raise ExecutionError(f"call depth limit exceeded in {function.name}")
        env: dict[int, object] = {}
        for formal, actual in zip(function.args, args):
            env[id(formal)] = actual

        trace = self.trace
        block = function.entry
        prev_block = None
        while True:
            trace.block_counts[block.uid] = trace.block_counts.get(block.uid, 0) + 1
            # Phis evaluate simultaneously from the incoming edge.
            phis = block.phis()
            if phis:
                staged = []
                for phi in phis:
                    try:
                        index = phi.phi_blocks.index(prev_block)
                    except ValueError as exc:
                        raise ExecutionError(
                            f"{function.name}: phi in {block.name} has no "
                            f"incoming edge from "
                            f"{prev_block.name if prev_block else '<entry>'}"
                        ) from exc
                    staged.append((phi, self._value(env, phi.operands[index])))
                for phi, value in staged:
                    env[id(phi)] = value
                trace.instructions += len(phis)

            next_block = None
            for instr in block.instructions:
                if instr.op == "phi":
                    continue
                self._steps += 1
                if self._steps > self.max_steps:
                    raise ExecutionError(
                        f"step limit {self.max_steps} exceeded in {function.name}"
                    )
                trace.instructions += 1
                op = instr.op

                if op == "br":
                    next_block = instr.targets[0]
                    break
                if op == "condbr":
                    cond = self._value(env, instr.operands[0])
                    taken = bool(cond)
                    stats = trace.branch_stats.setdefault(instr.uid, [0, 0])
                    stats[0] += 1 if taken else 0
                    stats[1] += 1
                    next_block = instr.targets[0] if taken else instr.targets[1]
                    break
                if op == "ret":
                    if instr.operands:
                        return self._value(env, instr.operands[0])
                    return None
                if op == "unreachable":
                    raise ExecutionError(f"reached unreachable in {function.name}")

                try:
                    env[id(instr)] = self._execute(function, env, instr, depth)
                except BaseException as exc:
                    # Cold path: stamp the trap site onto the escaping
                    # exception for the flight recorder (repro.obs.flight).
                    # The innermost frame wins; zero cost when not raising.
                    if not hasattr(exc, "trap_function"):
                        exc.trap_function = function.name
                        exc.trap_block_uids = (block.uid,)
                        exc.trap_loc = instr.loc
                        exc.trap_ir_function = function
                    raise

            if next_block is None:
                raise ExecutionError(
                    f"{function.name}: block {block.name} fell through"
                )
            prev_block = block
            block = next_block

    def _value(self, env: dict, value) -> object:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, Instruction) or value.__class__.__name__ == "Argument":
            try:
                return env[id(value)]
            except KeyError as exc:
                raise ExecutionError(f"use of undefined value {value!r}") from exc
        # GlobalVariable: its runtime address in the shared region.
        address = getattr(value, "address", None)
        if address is None:
            raise ExecutionError(f"global @{value.name} has no address (not loaded)")
        if self.device == "gpu":
            # Globals are stored as CPU addresses; device code translates
            # explicitly, so hand out the CPU representation.
            return address
        return address

    def _execute(self, function: Function, env: dict, instr: Instruction, depth: int):
        op = instr.op
        trace = self.trace

        if op == "load":
            address = self._value(env, instr.operands[0])
            type_ = instr.type
            if self.collect_mem_events and not self._is_private(address):
                seq = self._mem_seq.get(instr.uid, 0)
                self._mem_seq[instr.uid] = seq + 1
                trace.record_mem(
                    MemEvent(
                        instr.uid,
                        seq,
                        self._canonical_cpu_address(address),
                        type_.size(),
                        False,
                    )
                )
            return self.load_scalar(address, type_)

        if op == "store":
            value = self._value(env, instr.operands[0])
            address = self._value(env, instr.operands[1])
            type_ = instr.operands[0].type
            if self.collect_mem_events and not self._is_private(address):
                seq = self._mem_seq.get(instr.uid, 0)
                self._mem_seq[instr.uid] = seq + 1
                trace.record_mem(
                    MemEvent(
                        instr.uid,
                        seq,
                        self._canonical_cpu_address(address),
                        type_.size(),
                        True,
                    )
                )
            self.store_scalar(address, type_, value)
            return None

        if op == "gep":
            base = self._value(env, instr.operands[0])
            address = base + instr.gep_offset
            for operand, scale in zip(instr.operands[1:], instr.gep_scales):
                address += self._value(env, operand) * scale
            trace.int_ops += 1
            return address & ((1 << 64) - 1)

        if op == "alloca":
            size = instr.alloc_type.size()
            return self._alloc_private(size)

        if op == "call":
            return self._call(function, env, instr, depth)

        if op == "select":
            cond = self._value(env, instr.operands[0])
            return self._value(env, instr.operands[1 if cond else 2])

        if op in ("icmp", "fcmp"):
            return self._compare(env, instr)

        if op in _CAST_EVAL:
            value = self._value(env, instr.operands[0])
            return _CAST_EVAL[op](value, instr.type)

        handler = _BINOP_EVAL.get(op)
        if handler is not None:
            lhs = self._value(env, instr.operands[0])
            rhs = self._value(env, instr.operands[1])
            if op in ("udiv", "urem", "lshr") and isinstance(instr.type, IntType):
                mask = (1 << instr.type.bits) - 1
                lhs &= mask
                rhs &= mask
            if op in _FLOAT_OPS:
                trace.flops += 1
            else:
                trace.int_ops += 1
            try:
                result = handler(lhs, rhs)
            except ZeroDivisionError as exc:
                raise ExecutionError(
                    f"division by zero in {function.name}: {instr!r}"
                ) from exc
            type_ = instr.type
            if isinstance(type_, IntType):
                return type_.wrap(int(result))
            if isinstance(type_, FloatType) and type_.bits == 32:
                return _f32(result)
            return result

        if op == "vcall":
            # Real vtable dispatch (the CPU path; GPU kernels have vcalls
            # expanded into compare chains by the devirtualization pass).
            from ..ir.types import I64 as _I64, PointerType as _Ptr

            obj = self._value(env, instr.operands[0])
            vtable_addr = self.load_scalar(obj, _Ptr(_I64))
            symbol = self.load_scalar(vtable_addr + 8 * instr.vslot, _I64)
            target = self.symbols.get(symbol)
            if target is None:
                raise ExecutionError(
                    f"virtual dispatch to unknown symbol {symbol:#x} "
                    f"(slot {instr.vslot}) — vtables not loaded?"
                )
            args = [obj] + [self._value(env, o) for o in instr.operands[1:]]
            self.trace.calls += 1
            self.trace.instructions += 3  # vptr load, slot load, compare/jump
            return self._run(target, args, depth + 1)
        raise ExecutionError(f"unhandled opcode {op} in {function.name}")

    def _compare(self, env: dict, instr: Instruction):
        lhs = self._value(env, instr.operands[0])
        rhs = self._value(env, instr.operands[1])
        pred = instr.pred
        if instr.op == "fcmp":
            self.trace.flops += 1
        else:
            self.trace.int_ops += 1
        if instr.op == "icmp" and pred.startswith("u"):
            bits = (
                instr.operands[0].type.bits
                if isinstance(instr.operands[0].type, IntType)
                else 64
            )
            mask = (1 << bits) - 1
            lhs &= mask
            rhs &= mask
            pred = "s" + pred[1:]  # same comparison on normalized values
        table = {
            "eq": lhs == rhs,
            "ne": lhs != rhs,
            "slt": lhs < rhs,
            "sle": lhs <= rhs,
            "sgt": lhs > rhs,
            "sge": lhs >= rhs,
            "oeq": lhs == rhs,
            "one": lhs != rhs,
            "olt": lhs < rhs,
            "ole": lhs <= rhs,
            "ogt": lhs > rhs,
            "oge": lhs >= rhs,
        }
        return 1 if table[pred] else 0

    def _call(self, function: Function, env: dict, instr: Instruction, depth: int):
        callee = instr.callee
        args = [self._value(env, operand) for operand in instr.operands]
        if isinstance(callee, Function):
            self.trace.calls += 1
            return self._run(callee, args, depth + 1)
        name = callee.name

        if name == "svm.to_gpu":
            self.trace.translations += 1
            self.trace.int_ops += 1
            address = args[0]
            if self._is_private(address) or address == 0:
                return address
            return self.region.cpu_to_gpu(address)
        if name == "svm.to_cpu":
            self.trace.translations += 1
            self.trace.int_ops += 1
            address = args[0]
            if self._is_private(address) or address == 0:
                return address
            return self.region.gpu_to_cpu(address)
        if name == "svm.malloc":
            if self.allocator is None:
                raise ExecutionError(
                    "svm.malloc with no allocator (device code cannot allocate)"
                )
            return self.allocator.calloc(max(1, args[0]))
        if name == "svm.free":
            if self.allocator is None:
                raise ExecutionError("svm.free with no allocator")
            if args[0]:
                self.allocator.free(args[0])
            return None
        if name == "gpu.global_id":
            return self.global_id
        if name == "gpu.num_cores":
            return self.num_cores
        if name == "gpu.barrier":
            return None
        if name.startswith("atomic."):
            return self._atomic(name, instr, args)
        if name.startswith("math."):
            short = name.split(".")[1]
            fn = MATH_EVAL[short]
            self.trace.flops += 4  # transcendental cost hint for the models
            result = fn(*args)
            if name.endswith(".f32"):
                return _f32(result)
            return result
        raise ExecutionError(f"unknown intrinsic {name}")

    def _atomic(self, name: str, instr: Instruction, args: list):
        # The simulator executes work-items sequentially, so atomics are
        # plain read-modify-write here; the timing models charge them more.
        address = args[0]
        pointee = instr.callee.ftype.params[0].pointee
        old = self.load_scalar(address, pointee)
        if self.collect_mem_events and not self._is_private(address):
            seq = self._mem_seq.get(instr.uid, 0)
            self._mem_seq[instr.uid] = seq + 1
            self.trace.record_mem(
                MemEvent(
                    instr.uid,
                    seq,
                    self._canonical_cpu_address(address),
                    pointee.size(),
                    True,
                )
            )
        if name == "atomic.add.i32" or name == "atomic.add.f32":
            new = old + args[1]
        elif name == "atomic.min.i32":
            new = min(old, args[1])
        elif name == "atomic.max.i32":
            new = max(old, args[1])
        elif name == "atomic.cas.i32":
            expected, desired = args[1], args[2]
            new = desired if old == expected else old
        else:
            raise ExecutionError(f"unknown atomic {name}")
        if isinstance(pointee, IntType):
            new = pointee.wrap(int(new))
        self.store_scalar(address, pointee, new)
        return old


# -- scalar encoding ----------------------------------------------------------


def _decode_scalar(raw: bytes, type_):
    if isinstance(type_, IntType):
        return int.from_bytes(raw, "little", signed=type_.signed)
    if isinstance(type_, FloatType):
        return struct.unpack("<f" if type_.bits == 32 else "<d", raw)[0]
    if isinstance(type_, PointerType):
        return int.from_bytes(raw, "little", signed=False)
    raise ExecutionError(f"cannot load aggregate {type_} as scalar")


def _encode_scalar(value, type_) -> bytes:
    if isinstance(type_, IntType):
        return type_.wrap(int(value)).to_bytes(
            type_.size(), "little", signed=type_.signed
        )
    if isinstance(type_, FloatType):
        return struct.pack("<f" if type_.bits == 32 else "<d", float(value))
    if isinstance(type_, PointerType):
        return (int(value) & ((1 << 64) - 1)).to_bytes(8, "little", signed=False)
    raise ExecutionError(f"cannot store aggregate {type_} as scalar")


_F32_PACK = struct.Struct("f").pack
_F32_UNPACK = struct.Struct("f").unpack


def _f32(value: float) -> float:
    return _F32_UNPACK(_F32_PACK(value))[0]


def _srem(a, b):
    if b == 0:
        raise ZeroDivisionError
    return a - _sdiv(a, b) * b


def _sdiv(a, b):
    if b == 0:
        raise ZeroDivisionError
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


_BINOP_EVAL: dict[str, Callable] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "sdiv": _sdiv,
    "udiv": lambda a, b: (a & ((1 << 64) - 1)) // (b & ((1 << 64) - 1)),
    "srem": _srem,
    "urem": lambda a, b: (a & ((1 << 64) - 1)) % (b & ((1 << 64) - 1)),
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b != 0 else math.copysign(math.inf, a) if a else math.nan,
    "frem": lambda a, b: math.fmod(a, b),
    "shl": lambda a, b: a << (b & 63),
    "lshr": lambda a, b: (a & ((1 << 64) - 1)) >> (b & 63),
    "ashr": lambda a, b: a >> (b & 63),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}

_CAST_EVAL: dict[str, Callable] = {
    "zext": lambda v, t: t.wrap(v & ((1 << 64) - 1)),
    "sext": lambda v, t: t.wrap(v),
    "trunc": lambda v, t: t.wrap(v),
    "bitcast": lambda v, t: v,
    "ptrtoint": lambda v, t: t.wrap(v),
    "inttoptr": lambda v, t: v & ((1 << 64) - 1),
    "sitofp": lambda v, t: _f32(float(v)) if t.bits == 32 else float(v),
    "uitofp": lambda v, t: _f32(float(v & ((1 << 64) - 1)))
    if t.bits == 32
    else float(v & ((1 << 64) - 1)),
    "fptosi": lambda v, t: t.wrap(int(v)),
    "fpext": lambda v, t: v,
    "fptrunc": lambda v, t: _f32(v),
}
