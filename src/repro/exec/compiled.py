"""Threaded-code execution engine: IR compiled once to Python closures.

The reference :class:`~repro.exec.interp.Interpreter` re-walks the IR
object graph for every work-item: string-compared opcode dispatch,
``dict[id(instr)]`` environments, a ``phi_blocks.index(prev_block)`` scan
per phi per block entry, and a fresh ``struct`` pack/unpack path per memory
access.  For a ``parallel_for_hetero`` over *n* work-items all of that is
paid *n* times, which makes the interpreter the wall-clock bottleneck of
every experiment.

This module does what the paper's runtime does with its
``gpu_program_t``/``gpu_function_t`` JIT cache (section 3.4), one level up:
each IR :class:`~repro.ir.values.Function` is lowered **once** to a flat
threaded program and every subsequent launch replays the compiled form:

* **Integer register slots.**  Every SSA value (argument or instruction
  result) gets a fixed index into a preallocated ``regs`` list; operand
  access compiles to ``regs[slot]`` instead of an ``id()``-keyed dict
  lookup.

* **Specialized step closures.**  Each non-phi instruction becomes one
  closure with its operands, result slot, type codecs and evaluation
  function burned in — no opcode dispatch at run time.

* **Per-edge phi-move plans.**  For every (predecessor, block) edge the
  parallel phi assignment is resolved at compile time to a list of
  ``(dst_slot, source)`` moves, applied read-all-then-write-all.

* **Direct block threading.**  ``br``/``condbr`` resolve to integer block
  indices; the driver loop is an index chase over a tuple of block records.

* **Fused trace counters.**  Per-block instruction/flop/int-op/translation
  totals are computed at compile time; the driver accumulates them (and
  per-block execution counts and per-branch outcomes) in local variables
  and flushes them into the :class:`~repro.exec.interp.ExecTrace` once per
  invocation instead of once per instruction.

* **Precompiled scalar codecs.**  Every scalar type's load/store path is a
  captured ``struct.Struct`` bound directly to the region's backing
  bytearray, with the SVM surface-window checks inlined.

Compiled functions are cached in a :class:`CodeCache` keyed by
``(function, device, collect_events)``; the runtime owns one cache per
region, so each kernel compiles at most once per runtime no matter how
many work-items are launched.  Results are bit-identical to the reference
interpreter: same return values, same ``ExecTrace`` contents (the
equivalence suite asserts this for all nine workloads on both devices).
The one intended divergence is error paths: the interpreter updates trace
counters per instruction, the compiled engine per block, so a trace
observed *after* an :class:`ExecutionError` may differ in its last partial
block.
"""

from __future__ import annotations

import operator
from struct import Struct
from typing import Optional

from ..ir.intrinsics import MATH_EVAL
from ..ir.types import FloatType, I64, IntType, PointerType
from ..ir.values import Constant, Function, GlobalVariable, Instruction
from ..svm.memory import MemoryFault
from .buffers import MemEventColumns, PrivateMemoryPool
from .interp import (
    _BINOP_EVAL,
    _CAST_EVAL,
    _FLOAT_OPS,
    _MAX_CALL_DEPTH,
    _MAX_STEPS_DEFAULT,
    _F32_PACK,
    _F32_UNPACK,
    ExecTrace,
    ExecutionError,
    Interpreter,
    MemEvent,
    _f32,
)

_MASK64 = (1 << 64) - 1
_PB = Interpreter.PRIVATE_BASE
_PE = _PB + Interpreter.PRIVATE_WINDOW + 0x1000

_INT_FMT = {
    (1, True): "<b",
    (1, False): "<B",
    (2, True): "<h",
    (2, False): "<H",
    (4, True): "<i",
    (4, False): "<I",
    (8, True): "<q",
    (8, False): "<Q",
}

_CMP_OPS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "slt": operator.lt,
    "sle": operator.le,
    "sgt": operator.gt,
    "sge": operator.ge,
    "oeq": operator.eq,
    "one": operator.ne,
    "olt": operator.lt,
    "ole": operator.le,
    "ogt": operator.gt,
    "oge": operator.ge,
}

#: integer division/remainder ops that can raise ZeroDivisionError
_DIV_OPS = frozenset(("sdiv", "udiv", "srem", "urem"))
#: ops whose operands the interpreter pre-masks to the result width
_UNSIGNED_MASK_OPS = frozenset(("udiv", "urem", "lshr"))

# terminator kinds for the driver loop
_T_BR = 0
_T_CONDBR = 1
_T_RET = 2
_T_UNREACHABLE = 3
_T_FALLTHROUGH = 4


def _int_finisher(type_):
    """``type_.wrap(int(value))`` as one closure with the type's mask and
    sign constants burned in (the hot path of every integer binop and
    store)."""
    bits = type_.bits
    mask = (1 << bits) - 1
    if type_.signed:
        sign = 1 << (bits - 1)
        span = 1 << bits

        def finish_signed(value):
            value = int(value) & mask
            return value - span if value >= sign else value

        return finish_signed

    def finish_unsigned(value):
        return int(value) & mask

    return finish_unsigned


def _scalar_format(type_) -> Optional[str]:
    if isinstance(type_, IntType):
        return _INT_FMT.get((type_.size(), type_.signed))
    if isinstance(type_, FloatType):
        return "<f" if type_.bits == 32 else "<d"
    if isinstance(type_, PointerType):
        return "<Q"
    return None


def _make_reader(region, device: str, type_):
    """Compile a ``read(address, ctx) -> value`` closure for one scalar
    type on one device, with the SVM window checks inlined."""
    size = type_.size()
    fmt = _scalar_format(type_)
    if fmt is None:

        def bad_read(address, ctx, _t=type_):
            raise ExecutionError(f"cannot load aggregate {_t} as scalar")

        return bad_read, size

    unpack = Struct(fmt).unpack_from
    data = region.physical.data
    limit = region.size
    if device == "gpu":
        base = region.gpu_base
        end = base + limit

        def read(address, ctx):
            if _PB <= address < _PE:
                buf = ctx._priv_buf
                if buf is None:
                    buf = ctx._acquire_private()
                return unpack(buf, address - _PB)[0]
            offset = address - base
            if offset < 0 or offset + size > limit:
                raise MemoryFault(
                    f"GPU address {address:#x} (+{size}) outside surface "
                    f"[{base:#x}, {end:#x}) — untranslated shared pointer?"
                )
            return unpack(data, offset)[0]

    else:
        base = region.cpu_base
        end = base + limit

        def read(address, ctx):
            if _PB <= address < _PE:
                buf = ctx._priv_buf
                if buf is None:
                    buf = ctx._acquire_private()
                return unpack(buf, address - _PB)[0]
            offset = address - base
            if offset < 0 or offset + size > limit:
                raise MemoryFault(
                    f"CPU address {address:#x} (+{size}) outside the shared "
                    f"region [{base:#x}, {end:#x})"
                )
            return unpack(data, offset)[0]

    return read, size


def _make_writer(region, device: str, type_):
    """Compile a ``write(address, value, ctx)`` closure (see
    :func:`_make_reader`); private stores update the engine's dirty
    high-water mark for buffer pooling."""
    size = type_.size()
    fmt = _scalar_format(type_)
    if fmt is None:

        def bad_write(address, value, ctx, _t=type_):
            raise ExecutionError(f"cannot store aggregate {_t} as scalar")

        return bad_write, size

    pack_into = Struct(fmt).pack_into
    if isinstance(type_, IntType):
        conv = _int_finisher(type_)
    elif isinstance(type_, FloatType):
        conv = float
    else:

        def conv(value):
            return int(value) & _MASK64

    data = region.physical.data
    limit = region.size
    base = region.gpu_base if device == "gpu" else region.cpu_base
    end = base + limit
    gpu = device == "gpu"

    def write(address, value, ctx):
        if _PB <= address < _PE:
            buf = ctx._priv_buf
            if buf is None:
                buf = ctx._acquire_private()
            off = address - _PB
            pack_into(buf, off, conv(value))
            if off + size > ctx._priv_dirty:
                ctx._priv_dirty = off + size
            return
        offset = address - base
        if offset < 0 or offset + size > limit:
            if gpu:
                raise MemoryFault(
                    f"GPU address {address:#x} (+{size}) outside surface "
                    f"[{base:#x}, {end:#x}) — untranslated shared pointer?"
                )
            raise MemoryFault(
                f"CPU address {address:#x} (+{size}) outside the shared "
                f"region [{base:#x}, {end:#x})"
            )
        pack_into(data, offset, conv(value))

    return write, size


class _Block:
    """One compiled basic block: phi plan, step closures, terminator."""

    __slots__ = (
        "uid_list",
        "name",
        "steps",
        "n_steps",
        "d_instr",
        "d_flops",
        "d_int_ops",
        "d_translations",
        "d_calls",
        "phi_plans",
        "kind",
        "true_index",
        "false_index",
        "cond",
        "branch_uid",
        "ret_get",
        "message",
    )

    def __init__(self):
        self.uid_list = ()
        self.steps = ()
        self.n_steps = 0
        self.d_instr = 0
        self.d_flops = 0
        self.d_int_ops = 0
        self.d_translations = 0
        self.d_calls = 0
        self.phi_plans = None
        self.kind = _T_FALLTHROUGH
        self.true_index = 0
        self.false_index = 0
        self.cond = None
        self.branch_uid = -1
        self.ret_get = None
        self.message = ""


class CodeCache:
    """Per-runtime cache of compiled functions (the simulator-level
    analogue of the paper's ``gpu_program_t``/``gpu_function_t`` cache).

    Keyed by ``(function, device, collect_events)``; compiled code binds
    directly to one region's backing memory, so the cache is created per
    :class:`~repro.svm.region.SharedRegion` and shared by every engine the
    runtime spawns.  ``compilations``/``hits`` let tests assert the
    compile-once/launch-many property.
    """

    def __init__(self, region, counters=None):
        self.region = region
        self._cache: dict[tuple, "CompiledFunction"] = {}
        self.compilations = 0
        self.hits = 0
        # Optional repro.obs.CounterRegistry; mirrors the two totals above
        # as code_cache.hits / code_cache.compilations when attached.
        self.counters = counters

    def get(
        self, function: Function, device: str, collect_events: bool
    ) -> "CompiledFunction":
        key = (function, device, collect_events)
        compiled = self._cache.get(key)
        if compiled is not None:
            self.hits += 1
            if self.counters is not None:
                self.counters.add("code_cache.hits")
            return compiled
        self.compilations += 1
        if self.counters is not None:
            self.counters.add("code_cache.compilations")
        compiled = CompiledFunction(function, device, collect_events, self)
        # Register before compiling the body so recursive (and mutually
        # recursive) calls resolve to the same object.
        self._cache[key] = compiled
        compiled._compile()
        return compiled


def _effective_terminator(block):
    """The first terminator in the instruction list — the one execution
    actually reaches (``BasicBlock.terminator`` only looks at the last
    instruction, which may differ in malformed blocks)."""
    for instr in block.instructions:
        if instr.op in ("br", "condbr", "ret", "unreachable"):
            return instr
    return None


class FunctionPlan:
    """The engine-independent lowering plan for one IR function: the
    reachable-block closure, the SSA register-slot assignment, and the
    superblock partition.  Both the threaded-code engine and the vector
    engine compile from the same plan, which is what keeps their unit
    structure — and therefore block counts, branch stats and derived
    per-unit counters — identical by construction."""

    __slots__ = (
        "blocks",
        "terms",
        "slots",
        "nregs",
        "arg_slots",
        "units",
        "unit_idx_by_block",
    )

    def __init__(self, blocks, terms, slots, nregs, arg_slots, units, unit_idx_by_block):
        self.blocks = blocks
        self.terms = terms
        self.slots = slots
        self.nregs = nregs
        self.arg_slots = arg_slots
        self.units = units
        self.unit_idx_by_block = unit_idx_by_block


def plan_function(fn: Function) -> Optional[FunctionPlan]:
    """Compute the shared lowering plan for ``fn`` (or ``None`` for a
    bodyless function)."""
    # Also pick up blocks reachable only through branch targets but
    # absent from fn.blocks (a pass may leave such edges); the compiler
    # must be total over the same object graph the interpreter walks.
    blocks = list(fn.blocks)
    if not blocks:
        return None
    seen = {id(block) for block in blocks}
    terms: dict[int, object] = {}
    i = 0
    while i < len(blocks):
        block = blocks[i]
        term = _effective_terminator(block)
        terms[id(block)] = term
        targets = list(block.successors())
        if term is not None and term.op in ("br", "condbr"):
            targets.extend(term.targets)
        for succ in targets:
            if id(succ) not in seen:
                seen.add(id(succ))
                blocks.append(succ)
        i += 1
    slots: dict[int, int] = {}
    for arg in fn.args:
        slots[id(arg)] = len(slots)
    for block in blocks:
        for instr in block.instructions:
            slots[id(instr)] = len(slots)
    nregs = len(slots)
    arg_slots = [slots[id(arg)] for arg in fn.args]

    # Superblock formation: a block whose only predecessor reaches it
    # through an unconditional ``br`` is fused into that predecessor's
    # unit — the driver loop then runs whole straight-line chains per
    # iteration.  Block counts stay exact because every constituent
    # executes whenever its chain head does.
    preds: dict[int, int] = {}
    for block in blocks:
        term = terms[id(block)]
        if term is not None and term.op in ("br", "condbr"):
            for succ in term.targets:
                preds[id(succ)] = preds.get(id(succ), 0) + 1
    entry_id = id(blocks[0])
    merge_after: dict[int, object] = {}
    merged: set[int] = set()
    for block in blocks:
        term = terms[id(block)]
        if (
            term is not None
            and term.op == "br"
            and block.instructions
            and term is block.instructions[-1]
        ):
            succ = term.targets[0]
            if (
                id(succ) in seen
                and id(succ) != entry_id
                and id(succ) != id(block)
                and preds.get(id(succ), 0) == 1
            ):
                merge_after[id(block)] = succ
                merged.add(id(succ))

    units: list[list] = []
    placed: set[int] = set()

    def build_chain(head) -> None:
        chain = [head]
        placed.add(id(head))
        cursor = head
        while True:
            nxt = merge_after.get(id(cursor))
            if nxt is None or id(nxt) in placed:
                break
            chain.append(nxt)
            placed.add(id(nxt))
            cursor = nxt
        units.append(chain)

    for block in blocks:
        if id(block) not in merged and id(block) not in placed:
            build_chain(block)
    for block in blocks:  # unreachable merge cycles: force a head
        if id(block) not in placed:
            build_chain(block)

    unit_idx_by_block = {
        block: i for i, chain in enumerate(units) for block in chain
    }
    return FunctionPlan(
        blocks, terms, slots, nregs, arg_slots, units, unit_idx_by_block
    )


class CompiledFunction:
    """A function lowered to a flat tuple of :class:`_Block` records."""

    __slots__ = (
        "function",
        "name",
        "device",
        "collect",
        "cache",
        "region",
        "nargs",
        "arg_slots",
        "nregs",
        "blocks",
        "block_names",
    )

    def __init__(self, function: Function, device: str, collect: bool, cache: CodeCache):
        self.function = function
        self.name = function.name
        self.device = device
        self.collect = collect
        self.cache = cache
        self.region = cache.region
        self.nargs = len(function.args)
        self.arg_slots: list[int] = []
        self.nregs = 0
        self.blocks: tuple = ()
        self.block_names: tuple = ()

    # -- compilation -----------------------------------------------------

    @staticmethod
    def _effective_terminator(block):
        """The first terminator in the instruction list — the one execution
        actually reaches (``BasicBlock.terminator`` only looks at the last
        instruction, which may differ in malformed blocks)."""
        for instr in block.instructions:
            if instr.op in ("br", "condbr", "ret", "unreachable"):
                return instr
        return None

    def _compile(self) -> None:
        plan = plan_function(self.function)
        if plan is None:
            return
        slots = plan.slots
        self.nregs = plan.nregs
        self.arg_slots = list(plan.arg_slots)
        unit_idx_by_block = plan.unit_idx_by_block
        self.blocks = tuple(
            self._compile_unit(chain, slots, unit_idx_by_block)
            for chain in plan.units
        )
        self.block_names = tuple(chain[-1].name for chain in plan.units)

    def _getter(self, value, slots):
        """Compile operand access: constants fold to the captured value,
        SSA values to a register read, globals to a late-bound address
        read (addresses are assigned when a runtime loads the program)."""
        if isinstance(value, Constant):
            return lambda regs, _v=value.value: _v
        slot = slots.get(id(value))
        if slot is not None:
            return lambda regs, _s=slot: regs[_s]
        if isinstance(value, GlobalVariable):

            def read_global(regs, _gv=value):
                address = _gv.address
                if address is None:
                    raise ExecutionError(
                        f"global @{_gv.name} has no address (not loaded)"
                    )
                return address

            return read_global

        def undefined(regs, _v=value):
            raise ExecutionError(f"use of undefined value {_v!r}")

        return undefined

    def _reg_slot(self, value, slots) -> Optional[int]:
        if isinstance(value, Constant):
            return None
        return slots.get(id(value))

    def _compile_unit(self, chain, slots, unit_idx_by_block) -> _Block:
        """Compile one superblock: the head's phi plans, then every
        constituent block's steps back to back with mid-chain phi edges
        lowered to plain move steps."""
        out = _Block()
        head = chain[0]
        out.uid_list = tuple(block.uid for block in chain)
        out.name = head.name
        out.phi_plans = self._compile_phis(head, head.phis(), slots, unit_idx_by_block)

        steps: list = []
        terminator = None
        term_block = chain[-1]
        n_steps = 0
        last = len(chain) - 1
        for bi, block in enumerate(chain):
            phis = block.phis()
            if bi > 0 and phis:
                moves, error = self._phi_moves(block, phis, chain[bi - 1], slots)
                if error is not None:

                    def step_phi_error(regs, ctx, _msg=error):
                        raise ExecutionError(_msg)

                    steps.append(step_phi_error)
                else:
                    move = self._compile_moves(moves, slots)

                    def step_phi(regs, ctx, _m=move):
                        _m(regs)

                    steps.append(step_phi)
            n_nonphi = 0
            block_term = None
            for instr in block.instructions:
                if instr.op == "phi":
                    continue
                n_nonphi += 1
                if instr.op in ("br", "condbr", "ret", "unreachable"):
                    block_term = instr
                    break
                self._account(instr, out)
                steps.append(self._compile_instr(instr, slots))
            n_steps += n_nonphi
            out.d_instr += len(phis) + n_nonphi
            if bi == last:
                terminator = block_term
                term_block = block
            # mid-chain block_term is the fused unconditional br — its
            # control transfer is implicit in the step concatenation.
        out.steps = tuple(steps)
        out.n_steps = n_steps

        if terminator is None:
            out.kind = _T_FALLTHROUGH
            out.message = f"{self.name}: block {term_block.name} fell through"
        elif terminator.op == "br":
            out.kind = _T_BR
            out.true_index = unit_idx_by_block[terminator.targets[0]]
        elif terminator.op == "condbr":
            out.kind = _T_CONDBR
            out.cond = self._getter(terminator.operands[0], slots)
            out.true_index = unit_idx_by_block[terminator.targets[0]]
            out.false_index = unit_idx_by_block[terminator.targets[1]]
            out.branch_uid = terminator.uid
        elif terminator.op == "ret":
            out.kind = _T_RET
            if terminator.operands:
                out.ret_get = self._getter(terminator.operands[0], slots)
        else:
            out.kind = _T_UNREACHABLE
            out.message = f"reached unreachable in {self.name}"
        return out

    def _phi_moves(self, block, phis, pred, slots):
        """Resolve one (pred, block) edge's phi assignment to a move list,
        or an error message when a phi has no incoming value for it."""
        moves = []
        for phi in phis:
            try:
                k = phi.phi_blocks.index(pred)
            except ValueError:
                return None, (
                    f"{self.name}: phi in {block.name} has no incoming "
                    f"edge from {pred.name}"
                )
            moves.append((slots[id(phi)], phi.operands[k]))
        return moves, None

    def _compile_phis(self, block, phis, slots, unit_idx_by_block):
        """Per-edge phi-move plans: pred unit index -> move closure (or an
        error message for edges a phi has no incoming value for).  The
        parallel assignment is resolved at compile time; multi-move plans
        read all sources before writing any destination."""
        if not phis:
            return None
        plans: dict[int, object] = {}
        for pred, unit_index in unit_idx_by_block.items():
            if block not in pred.successors():
                continue
            moves, error = self._phi_moves(block, phis, pred, slots)
            plans[unit_index] = (
                error if error is not None else self._compile_moves(moves, slots)
            )
        return plans

    def _compile_moves(self, moves, slots):
        """Compile one phi edge's parallel moves to a ``move(regs)``
        closure, with the register→register and constant→register shapes
        fully specialized."""
        if len(moves) == 1:
            dst, value = moves[0]
            src = self._reg_slot(value, slots)
            if src is not None:

                def move_r(regs):
                    regs[dst] = regs[src]

                return move_r
            if isinstance(value, Constant):
                const = value.value

                def move_c(regs):
                    regs[dst] = const

                return move_c
            get = self._getter(value, slots)

            def move_g(regs):
                regs[dst] = get(regs)

            return move_g
        if len(moves) == 2:
            (d0, v0), (d1, v1) = moves
            s0 = self._reg_slot(v0, slots)
            s1 = self._reg_slot(v1, slots)
            if s0 is not None and s1 is not None:

                def move_rr(regs):
                    a = regs[s0]
                    b = regs[s1]
                    regs[d0] = a
                    regs[d1] = b

                return move_rr
            g0 = self._getter(v0, slots)
            g1 = self._getter(v1, slots)

            def move_gg(regs):
                a = g0(regs)
                b = g1(regs)
                regs[d0] = a
                regs[d1] = b

            return move_gg
        if len(moves) == 3:
            (d0, v0), (d1, v1), (d2, v2) = moves
            g0 = self._getter(v0, slots)
            g1 = self._getter(v1, slots)
            g2 = self._getter(v2, slots)

            def move_3(regs):
                a = g0(regs)
                b = g1(regs)
                c = g2(regs)
                regs[d0] = a
                regs[d1] = b
                regs[d2] = c

            return move_3
        if len(moves) == 4:
            (d0, v0), (d1, v1), (d2, v2), (d3, v3) = moves
            g0 = self._getter(v0, slots)
            g1 = self._getter(v1, slots)
            g2 = self._getter(v2, slots)
            g3 = self._getter(v3, slots)

            def move_4(regs):
                a = g0(regs)
                b = g1(regs)
                c = g2(regs)
                d = g3(regs)
                regs[d0] = a
                regs[d1] = b
                regs[d2] = c
                regs[d3] = d

            return move_4
        dsts = tuple(dst for dst, _ in moves)
        gets = tuple(self._getter(value, slots) for _, value in moves)

        def move_n(regs):
            values = [g(regs) for g in gets]
            for dst, value in zip(dsts, values):
                regs[dst] = value

        return move_n

    def _account(self, instr: Instruction, out: _Block) -> None:
        """Fold one instruction's fixed trace-counter contributions into
        the block totals (mirrors the reference interpreter exactly)."""
        op = instr.op
        if op == "gep":
            out.d_int_ops += 1
        elif op in ("icmp",):
            out.d_int_ops += 1
        elif op == "fcmp":
            out.d_flops += 1
        elif op in _BINOP_EVAL:
            if op in _FLOAT_OPS:
                out.d_flops += 1
            else:
                out.d_int_ops += 1
        elif op == "vcall":
            out.d_calls += 1
            out.d_instr += 3  # vptr load, slot load, compare/jump
        elif op == "call":
            callee = instr.callee
            if isinstance(callee, Function):
                out.d_calls += 1
            else:
                name = getattr(callee, "name", "")
                if name in ("svm.to_gpu", "svm.to_cpu"):
                    out.d_translations += 1
                    out.d_int_ops += 1
                elif name.startswith("math."):
                    out.d_flops += 4  # transcendental cost hint

    # -- per-opcode step compilation -------------------------------------

    def _compile_instr(self, instr: Instruction, slots):
        op = instr.op
        slot = slots[id(instr)]
        if op == "load":
            return self._compile_load(instr, slot, slots)
        if op == "store":
            return self._compile_store(instr, slots)
        if op == "gep":
            return self._compile_gep(instr, slot, slots)
        if op in ("icmp", "fcmp"):
            return self._compile_compare(instr, slot, slots)
        if op in _BINOP_EVAL:
            return self._compile_binop(instr, slot, slots)
        if op in _CAST_EVAL:
            return self._compile_cast(instr, slot, slots)
        if op == "select":
            get_cond = self._getter(instr.operands[0], slots)
            get_true = self._getter(instr.operands[1], slots)
            get_false = self._getter(instr.operands[2], slots)

            def step_select(regs, ctx):
                regs[slot] = (get_true if get_cond(regs) else get_false)(regs)

            return step_select
        if op == "alloca":
            size = instr.alloc_type.size()

            def step_alloca(regs, ctx):
                regs[slot] = ctx._alloc_private(size)

            return step_alloca
        if op == "call":
            return self._compile_call(instr, slot, slots)
        if op == "vcall":
            return self._compile_vcall(instr, slot, slots)

        def step_unknown(regs, ctx, _op=op, _n=self.name):
            raise ExecutionError(f"unhandled opcode {_op} in {_n}")

        return step_unknown

    def _compile_load(self, instr, slot, slots):
        sa = self._reg_slot(instr.operands[0], slots)
        fmt = _scalar_format(instr.type)
        if sa is not None and fmt is not None:
            # Hot shape (register address, scalar type): inline the whole
            # access — private window, trace bookkeeping, canonicalization,
            # bounds check, codec — into one closure.
            size = instr.type.size()
            unpack = Struct(fmt).unpack_from
            region = self.region
            data = region.physical.data
            limit = region.size
            gpu = self.device == "gpu"
            base = region.gpu_base if gpu else region.cpu_base
            end = base + limit
            if not self.collect:

                def step_load_ri(regs, ctx):
                    address = regs[sa]
                    if _PB <= address < _PE:
                        buf = ctx._priv_buf
                        if buf is None:
                            buf = ctx._acquire_private()
                        regs[slot] = unpack(buf, address - _PB)[0]
                        return
                    offset = address - base
                    if offset < 0 or offset + size > limit:
                        raise MemoryFault(
                            f"GPU address {address:#x} (+{size}) outside "
                            f"surface [{base:#x}, {end:#x}) — untranslated "
                            f"shared pointer?"
                            if gpu
                            else f"CPU address {address:#x} (+{size}) outside "
                            f"the shared region [{base:#x}, {end:#x})"
                        )
                    regs[slot] = unpack(data, offset)[0]

                return step_load_ri
            uid = instr.uid
            if gpu:
                cend = base + region.surface.size
                svm_const = region.svm_const

                def step_load_traced_ri_gpu(regs, ctx):
                    address = regs[sa]
                    if _PB <= address < _PE:
                        buf = ctx._priv_buf
                        if buf is None:
                            buf = ctx._acquire_private()
                        regs[slot] = unpack(buf, address - _PB)[0]
                        return
                    seqs = ctx._mem_seq
                    seq = seqs.get(uid, 0)
                    seqs[uid] = seq + 1
                    ctx._record(
                        uid,
                        seq,
                        address - svm_const if base <= address < cend else address,
                        size,
                        False,
                    )
                    offset = address - base
                    if offset < 0 or offset + size > limit:
                        raise MemoryFault(
                            f"GPU address {address:#x} (+{size}) outside "
                            f"surface [{base:#x}, {end:#x}) — untranslated "
                            f"shared pointer?"
                        )
                    regs[slot] = unpack(data, offset)[0]

                return step_load_traced_ri_gpu

            def step_load_traced_ri_cpu(regs, ctx):
                address = regs[sa]
                if _PB <= address < _PE:
                    buf = ctx._priv_buf
                    if buf is None:
                        buf = ctx._acquire_private()
                    regs[slot] = unpack(buf, address - _PB)[0]
                    return
                seqs = ctx._mem_seq
                seq = seqs.get(uid, 0)
                seqs[uid] = seq + 1
                ctx._record(uid, seq, address, size, False)
                offset = address - base
                if offset < 0 or offset + size > limit:
                    raise MemoryFault(
                        f"CPU address {address:#x} (+{size}) outside the "
                        f"shared region [{base:#x}, {end:#x})"
                    )
                regs[slot] = unpack(data, offset)[0]

            return step_load_traced_ri_cpu
        read, size = _make_reader(self.region, self.device, instr.type)
        get_addr = self._getter(instr.operands[0], slots)
        if not self.collect:

            def step_load(regs, ctx):
                regs[slot] = read(get_addr(regs), ctx)

            return step_load
        uid = instr.uid
        canonical = self._canonicalizer()

        def step_load_traced(regs, ctx):
            address = get_addr(regs)
            if not (_PB <= address < _PE):
                seqs = ctx._mem_seq
                seq = seqs.get(uid, 0)
                seqs[uid] = seq + 1
                ctx._record(uid, seq, canonical(address), size, False)
            regs[slot] = read(address, ctx)

        return step_load_traced

    def _compile_store(self, instr, slots):
        type_ = instr.operands[0].type
        get_value = self._getter(instr.operands[0], slots)
        sa = self._reg_slot(instr.operands[1], slots)
        fmt = _scalar_format(type_)
        if sa is not None and fmt is not None:
            # Hot shape (register address, scalar type): fully inlined,
            # see _compile_load.
            size = type_.size()
            pack_into = Struct(fmt).pack_into
            if isinstance(type_, IntType):
                conv = _int_finisher(type_)
            elif isinstance(type_, FloatType):
                conv = float
            else:

                def conv(value):
                    return int(value) & _MASK64

            region = self.region
            data = region.physical.data
            limit = region.size
            gpu = self.device == "gpu"
            base = region.gpu_base if gpu else region.cpu_base
            end = base + limit
            if not self.collect:

                def step_store_ri(regs, ctx):
                    value = get_value(regs)
                    address = regs[sa]
                    if _PB <= address < _PE:
                        buf = ctx._priv_buf
                        if buf is None:
                            buf = ctx._acquire_private()
                        off = address - _PB
                        pack_into(buf, off, conv(value))
                        if off + size > ctx._priv_dirty:
                            ctx._priv_dirty = off + size
                        return
                    offset = address - base
                    if offset < 0 or offset + size > limit:
                        raise MemoryFault(
                            f"GPU address {address:#x} (+{size}) outside "
                            f"surface [{base:#x}, {end:#x}) — untranslated "
                            f"shared pointer?"
                            if gpu
                            else f"CPU address {address:#x} (+{size}) outside "
                            f"the shared region [{base:#x}, {end:#x})"
                        )
                    pack_into(data, offset, conv(value))

                return step_store_ri
            uid = instr.uid
            if gpu:
                cend = base + region.surface.size
                svm_const = region.svm_const

                def step_store_traced_ri_gpu(regs, ctx):
                    value = get_value(regs)
                    address = regs[sa]
                    if _PB <= address < _PE:
                        buf = ctx._priv_buf
                        if buf is None:
                            buf = ctx._acquire_private()
                        off = address - _PB
                        pack_into(buf, off, conv(value))
                        if off + size > ctx._priv_dirty:
                            ctx._priv_dirty = off + size
                        return
                    seqs = ctx._mem_seq
                    seq = seqs.get(uid, 0)
                    seqs[uid] = seq + 1
                    ctx._record(
                        uid,
                        seq,
                        address - svm_const if base <= address < cend else address,
                        size,
                        True,
                    )
                    offset = address - base
                    if offset < 0 or offset + size > limit:
                        raise MemoryFault(
                            f"GPU address {address:#x} (+{size}) outside "
                            f"surface [{base:#x}, {end:#x}) — untranslated "
                            f"shared pointer?"
                        )
                    pack_into(data, offset, conv(value))

                return step_store_traced_ri_gpu

            def step_store_traced_ri_cpu(regs, ctx):
                value = get_value(regs)
                address = regs[sa]
                if _PB <= address < _PE:
                    buf = ctx._priv_buf
                    if buf is None:
                        buf = ctx._acquire_private()
                    off = address - _PB
                    pack_into(buf, off, conv(value))
                    if off + size > ctx._priv_dirty:
                        ctx._priv_dirty = off + size
                    return
                seqs = ctx._mem_seq
                seq = seqs.get(uid, 0)
                seqs[uid] = seq + 1
                ctx._record(uid, seq, address, size, True)
                offset = address - base
                if offset < 0 or offset + size > limit:
                    raise MemoryFault(
                        f"CPU address {address:#x} (+{size}) outside the "
                        f"shared region [{base:#x}, {end:#x})"
                    )
                pack_into(data, offset, conv(value))

            return step_store_traced_ri_cpu
        write, size = _make_writer(self.region, self.device, type_)
        if not self.collect:
            get_addr = self._getter(instr.operands[1], slots)

            def step_store(regs, ctx):
                value = get_value(regs)
                write(get_addr(regs), value, ctx)

            return step_store
        uid = instr.uid
        canonical = self._canonicalizer()
        get_addr = self._getter(instr.operands[1], slots)

        def step_store_traced(regs, ctx):
            value = get_value(regs)
            address = get_addr(regs)
            if not (_PB <= address < _PE):
                seqs = ctx._mem_seq
                seq = seqs.get(uid, 0)
                seqs[uid] = seq + 1
                ctx._record(uid, seq, canonical(address), size, True)
            write(address, value, ctx)

        return step_store_traced

    def _canonicalizer(self):
        """Address normalization for trace events: GPU surface addresses
        are reported in CPU space so both devices produce comparable
        access streams."""
        if self.device != "gpu":
            return lambda address: address
        region = self.region
        base = region.gpu_base
        end = base + region.surface.size
        svm_const = region.svm_const

        def canonical(address):
            # Surface.contains(address) with the default 1-byte extent.
            if base <= address and address + 1 <= end:
                return address - svm_const
            return address

        return canonical

    def _compile_gep(self, instr, slot, slots):
        sbase = self._reg_slot(instr.operands[0], slots)
        get_base = self._getter(instr.operands[0], slots)
        offset = instr.gep_offset
        pairs = list(zip(instr.operands[1:], instr.gep_scales))
        if not pairs:
            if sbase is not None:

                def step_gep0_r(regs, ctx):
                    regs[slot] = (regs[sbase] + offset) & _MASK64

                return step_gep0_r

            def step_gep0(regs, ctx):
                regs[slot] = (get_base(regs) + offset) & _MASK64

            return step_gep0
        if len(pairs) == 1:
            sidx = self._reg_slot(pairs[0][0], slots)
            scale = pairs[0][1]
            if sbase is not None and sidx is not None:

                def step_gep1_rr(regs, ctx):
                    regs[slot] = (regs[sbase] + offset + regs[sidx] * scale) & _MASK64

                return step_gep1_rr
            if sbase is not None and isinstance(pairs[0][0], Constant):
                fixed = offset + pairs[0][0].value * scale

                def step_gep1_rc(regs, ctx):
                    regs[slot] = (regs[sbase] + fixed) & _MASK64

                return step_gep1_rc
            get_index = self._getter(pairs[0][0], slots)

            def step_gep1(regs, ctx):
                regs[slot] = (get_base(regs) + offset + get_index(regs) * scale) & _MASK64

            return step_gep1
        getters = [(self._getter(v, slots), s) for v, s in pairs]

        def step_gep(regs, ctx):
            address = get_base(regs) + offset
            for get, scale in getters:
                address += get(regs) * scale
            regs[slot] = address & _MASK64

        return step_gep

    def _compile_compare(self, instr, slot, slots):
        get_a = self._getter(instr.operands[0], slots)
        get_b = self._getter(instr.operands[1], slots)
        pred = instr.pred
        if instr.op == "icmp" and pred.startswith("u"):
            type0 = instr.operands[0].type
            bits = type0.bits if isinstance(type0, IntType) else 64
            mask = (1 << bits) - 1
            cmp = _CMP_OPS.get("s" + pred[1:])
            if cmp is None:

                def step_badupred(regs, ctx, _p="s" + pred[1:]):
                    raise KeyError(_p)

                return step_badupred

            def step_ucmp(regs, ctx):
                regs[slot] = 1 if cmp(get_a(regs) & mask, get_b(regs) & mask) else 0

            return step_ucmp
        cmp = _CMP_OPS.get(pred)
        if cmp is None:

            def step_badpred(regs, ctx, _p=pred):
                raise KeyError(_p)

            return step_badpred
        sa = self._reg_slot(instr.operands[0], slots)
        sb = self._reg_slot(instr.operands[1], slots)
        if sa is not None and sb is not None:

            def step_cmp_rr(regs, ctx):
                regs[slot] = 1 if cmp(regs[sa], regs[sb]) else 0

            return step_cmp_rr
        if sa is not None and isinstance(instr.operands[1], Constant):
            cb = instr.operands[1].value

            def step_cmp_rc(regs, ctx):
                regs[slot] = 1 if cmp(regs[sa], cb) else 0

            return step_cmp_rc

        def step_cmp(regs, ctx):
            regs[slot] = 1 if cmp(get_a(regs), get_b(regs)) else 0

        return step_cmp

    def _compile_binop(self, instr, slot, slots):
        op = instr.op
        handler = _BINOP_EVAL[op]
        type_ = instr.type
        if isinstance(type_, IntType):
            finish = _int_finisher(type_)
        elif isinstance(type_, FloatType) and type_.bits == 32:
            finish = _f32
        else:

            def finish(result):
                return result

        get_a = self._getter(instr.operands[0], slots)
        get_b = self._getter(instr.operands[1], slots)

        if op in _UNSIGNED_MASK_OPS and isinstance(type_, IntType):
            mask = (1 << type_.bits) - 1
            if op in _DIV_OPS:

                def step_udiv(regs, ctx, _i=instr):
                    try:
                        result = handler(get_a(regs) & mask, get_b(regs) & mask)
                    except ZeroDivisionError as exc:
                        raise ExecutionError(
                            f"division by zero in {self.name}: {_i!r}"
                        ) from exc
                    regs[slot] = finish(result)

                return step_udiv

            def step_umask(regs, ctx):
                regs[slot] = finish(handler(get_a(regs) & mask, get_b(regs) & mask))

            return step_umask

        if op in _DIV_OPS:

            def step_div(regs, ctx, _i=instr):
                try:
                    result = handler(get_a(regs), get_b(regs))
                except ZeroDivisionError as exc:
                    raise ExecutionError(
                        f"division by zero in {self.name}: {_i!r}"
                    ) from exc
                regs[slot] = finish(result)

            return step_div

        sa = self._reg_slot(instr.operands[0], slots)
        sb = self._reg_slot(instr.operands[1], slots)
        is_int = isinstance(type_, IntType)
        is_f32 = isinstance(type_, FloatType) and type_.bits == 32
        if sa is not None and sb is not None:
            if is_int:
                # Wrap inlined: int binops are the single hottest step.
                mask = (1 << type_.bits) - 1
                if type_.signed:
                    sign = 1 << (type_.bits - 1)
                    span = 1 << type_.bits

                    def step_bin_rr_si(regs, ctx):
                        result = int(handler(regs[sa], regs[sb])) & mask
                        regs[slot] = result - span if result >= sign else result

                    return step_bin_rr_si

                def step_bin_rr_ui(regs, ctx):
                    regs[slot] = int(handler(regs[sa], regs[sb])) & mask

                return step_bin_rr_ui
            if is_f32:

                def step_bin_rr_f32(regs, ctx):
                    regs[slot] = _F32_UNPACK(_F32_PACK(handler(regs[sa], regs[sb])))[0]

                return step_bin_rr_f32

            def step_bin_rr(regs, ctx):
                regs[slot] = finish(handler(regs[sa], regs[sb]))

            return step_bin_rr
        if sa is not None and isinstance(instr.operands[1], Constant):
            cb = instr.operands[1].value
            if is_f32:

                def step_bin_rc_f32(regs, ctx):
                    regs[slot] = _F32_UNPACK(_F32_PACK(handler(regs[sa], cb)))[0]

                return step_bin_rc_f32

            def step_bin_rc(regs, ctx):
                regs[slot] = finish(handler(regs[sa], cb))

            return step_bin_rc
        if sb is not None and isinstance(instr.operands[0], Constant):
            ca = instr.operands[0].value
            if is_f32:

                def step_bin_cr_f32(regs, ctx):
                    regs[slot] = _F32_UNPACK(_F32_PACK(handler(ca, regs[sb])))[0]

                return step_bin_cr_f32

            def step_bin_cr(regs, ctx):
                regs[slot] = finish(handler(ca, regs[sb]))

            return step_bin_cr

        def step_bin(regs, ctx):
            regs[slot] = finish(handler(get_a(regs), get_b(regs)))

        return step_bin

    def _compile_cast(self, instr, slot, slots):
        fn = _CAST_EVAL[instr.op]
        type_ = instr.type
        sa = self._reg_slot(instr.operands[0], slots)
        if sa is not None:

            def step_cast_r(regs, ctx):
                regs[slot] = fn(regs[sa], type_)

            return step_cast_r
        get = self._getter(instr.operands[0], slots)

        def step_cast(regs, ctx):
            regs[slot] = fn(get(regs), type_)

        return step_cast

    def _compile_call(self, instr, slot, slots):
        callee = instr.callee
        getters = [self._getter(v, slots) for v in instr.operands]
        if isinstance(callee, Function):
            sub = self.cache.get(callee, self.device, self.collect)
            arg_slots = [self._reg_slot(v, slots) for v in instr.operands]
            if all(s is not None for s in arg_slots):

                def step_call_r(regs, ctx):
                    regs[slot] = sub.invoke(ctx, [regs[s] for s in arg_slots])

                return step_call_r

            def step_call(regs, ctx):
                regs[slot] = sub.invoke(ctx, [g(regs) for g in getters])

            return step_call
        name = getattr(callee, "name", None)
        if name is None:

            def step_badcall(regs, ctx, _n=name):
                raise ExecutionError(f"unknown intrinsic {_n}")

            return step_badcall
        return self._compile_intrinsic(instr, name, slot, getters, slots)

    def _compile_intrinsic(self, instr, name, slot, getters, slots):
        region = self.region
        if name in ("svm.to_gpu", "svm.to_cpu"):
            svm_const = region.svm_const
            delta = svm_const if name == "svm.to_gpu" else -svm_const
            sa = self._reg_slot(instr.operands[0], slots)
            if sa is not None:

                def step_translate_r(regs, ctx):
                    address = regs[sa]
                    if (_PB <= address < _PE) or address == 0:
                        regs[slot] = address
                    else:
                        regs[slot] = address + delta

                return step_translate_r
            get = getters[0]

            def step_translate(regs, ctx):
                address = get(regs)
                if (_PB <= address < _PE) or address == 0:
                    regs[slot] = address
                else:
                    regs[slot] = address + delta

            return step_translate
        if name == "svm.malloc":
            get = getters[0]

            def step_malloc(regs, ctx):
                if ctx.allocator is None:
                    raise ExecutionError(
                        "svm.malloc with no allocator (device code cannot allocate)"
                    )
                regs[slot] = ctx.allocator.calloc(max(1, get(regs)))

            return step_malloc
        if name == "svm.free":
            get = getters[0]

            def step_free(regs, ctx):
                if ctx.allocator is None:
                    raise ExecutionError("svm.free with no allocator")
                address = get(regs)
                if address:
                    ctx.allocator.free(address)
                regs[slot] = None

            return step_free
        if name == "gpu.global_id":

            def step_gid(regs, ctx):
                regs[slot] = ctx.global_id

            return step_gid
        if name == "gpu.num_cores":

            def step_cores(regs, ctx):
                regs[slot] = ctx.num_cores

            return step_cores
        if name == "gpu.barrier":

            def step_barrier(regs, ctx):
                regs[slot] = None

            return step_barrier
        if name.startswith("atomic."):
            return self._compile_atomic(instr, name, slot, getters)
        if name.startswith("math."):
            short = name.split(".")[1]
            fn = MATH_EVAL.get(short)
            if fn is None:

                def step_badmath(regs, ctx, _s=short):
                    raise KeyError(_s)

                return step_badmath
            if name.endswith(".f32"):
                if len(getters) == 1:
                    get = getters[0]

                    def step_math1f(regs, ctx):
                        regs[slot] = _F32_UNPACK(_F32_PACK(fn(get(regs))))[0]

                    return step_math1f
                if len(getters) == 2:
                    get_a, get_b = getters

                    def step_math2f(regs, ctx):
                        regs[slot] = _F32_UNPACK(
                            _F32_PACK(fn(get_a(regs), get_b(regs)))
                        )[0]

                    return step_math2f

                def step_mathnf(regs, ctx):
                    regs[slot] = _f32(fn(*[g(regs) for g in getters]))

                return step_mathnf
            if len(getters) == 1:
                get = getters[0]

                def step_math1(regs, ctx):
                    regs[slot] = fn(get(regs))

                return step_math1
            if len(getters) == 2:
                get_a, get_b = getters

                def step_math2(regs, ctx):
                    regs[slot] = fn(get_a(regs), get_b(regs))

                return step_math2

            def step_mathn(regs, ctx):
                regs[slot] = fn(*[g(regs) for g in getters])

            return step_mathn

        def step_unknown(regs, ctx, _n=name):
            raise ExecutionError(f"unknown intrinsic {_n}")

        return step_unknown

    def _compile_atomic(self, instr, name, slot, getters):
        pointee = instr.callee.ftype.params[0].pointee
        read, size = _make_reader(self.region, self.device, pointee)
        write, _ = _make_writer(self.region, self.device, pointee)
        uid = instr.uid
        collect = self.collect
        canonical = self._canonicalizer()
        if isinstance(pointee, IntType):
            narrow = _int_finisher(pointee)
        else:

            def narrow(value):
                return value

        if name in ("atomic.add.i32", "atomic.add.f32"):
            combine = operator.add
        elif name == "atomic.min.i32":
            combine = min
        elif name == "atomic.max.i32":
            combine = max
        elif name == "atomic.cas.i32":
            get_addr, get_expected, get_desired = getters

            def step_cas(regs, ctx):
                address = get_addr(regs)
                old = read(address, ctx)
                if collect and not (_PB <= address < _PE):
                    seqs = ctx._mem_seq
                    seq = seqs.get(uid, 0)
                    seqs[uid] = seq + 1
                    ctx._record(uid, seq, canonical(address), size, True)
                new = get_desired(regs) if old == get_expected(regs) else old
                write(address, narrow(new), ctx)
                regs[slot] = old

            return step_cas
        else:

            def step_badatomic(regs, ctx, _n=name):
                raise ExecutionError(f"unknown atomic {_n}")

            return step_badatomic

        get_addr, get_value = getters

        def step_atomic(regs, ctx):
            address = get_addr(regs)
            old = read(address, ctx)
            if collect and not (_PB <= address < _PE):
                seqs = ctx._mem_seq
                seq = seqs.get(uid, 0)
                seqs[uid] = seq + 1
                ctx._record(uid, seq, canonical(address), size, True)
            write(address, narrow(combine(old, get_value(regs))), ctx)
            regs[slot] = old

        return step_atomic

    def _compile_vcall(self, instr, slot, slots):
        # Real vtable dispatch (the CPU path; GPU kernels have vcalls
        # expanded into compare chains by the devirtualization pass).
        read_vptr, _ = _make_reader(self.region, self.device, PointerType(I64))
        read_slot, _ = _make_reader(self.region, self.device, I64)
        vtable_offset = 8 * instr.vslot
        vslot = instr.vslot
        get_obj = self._getter(instr.operands[0], slots)
        getters = [self._getter(v, slots) for v in instr.operands[1:]]

        def step_vcall(regs, ctx):
            obj = get_obj(regs)
            vtable = read_vptr(obj, ctx)
            symbol = read_slot(vtable + vtable_offset, ctx)
            target = ctx.symbols.get(symbol)
            if target is None:
                raise ExecutionError(
                    f"virtual dispatch to unknown symbol {symbol:#x} "
                    f"(slot {vslot}) — vtables not loaded?"
                )
            sub = ctx.code_cache.get(target, ctx.device, ctx.collect_mem_events)
            args = [obj]
            for get in getters:
                args.append(get(regs))
            regs[slot] = sub.invoke(ctx, args)

        return step_vcall

    # -- execution -------------------------------------------------------

    def invoke(self, ctx: "CompiledEngine", args):
        """Run one invocation: thread the block records, accumulate trace
        counters in locals, flush once (even on error, so partial traces
        stay close to the interpreter's)."""
        depth = ctx._depth
        if depth > _MAX_CALL_DEPTH:
            raise ExecutionError(f"call depth limit exceeded in {self.name}")
        ctx._depth = depth + 1
        blocks = self.blocks
        if not blocks:
            ctx._depth = depth
            raise ExecutionError(f"{self.name} has no body")
        regs = [None] * self.nregs
        for slot, value in zip(self.arg_slots, args):
            regs[slot] = value
        trace = ctx.trace
        max_steps = ctx.max_steps
        n = len(blocks)
        block_counts = [0] * n
        branch_taken = [0] * n
        branch_total = [0] * n
        index = 0
        prev = -1
        result = None
        try:
            while True:
                block = blocks[index]
                block_counts[index] += 1
                steps_now = ctx._steps + block.n_steps
                ctx._steps = steps_now
                if steps_now > max_steps:
                    raise ExecutionError(
                        f"step limit {max_steps} exceeded in {self.name}"
                    )

                plans = block.phi_plans
                if plans is not None:
                    move = plans.get(prev)
                    if move is None:
                        prev_name = (
                            self.block_names[prev] if prev >= 0 else "<entry>"
                        )
                        raise ExecutionError(
                            f"{self.name}: phi in {block.name} has no "
                            f"incoming edge from {prev_name}"
                        )
                    if move.__class__ is str:
                        raise ExecutionError(move)
                    move(regs)

                for step in block.steps:
                    step(regs, ctx)

                kind = block.kind
                if kind == _T_BR:
                    prev = index
                    index = block.true_index
                elif kind == _T_CONDBR:
                    branch_total[index] += 1
                    prev = index
                    if block.cond(regs):
                        branch_taken[prev] += 1
                        index = block.true_index
                    else:
                        index = block.false_index
                elif kind == _T_RET:
                    get = block.ret_get
                    if get is not None:
                        result = get(regs)
                    return result
                else:
                    raise ExecutionError(block.message)
        except BaseException as exc:
            # Cold path: stamp the trapping superblock onto the escaping
            # exception for the flight recorder (repro.obs.flight) — the
            # innermost invocation wins, and Python 3.11 zero-cost
            # exceptions make this free on the non-trapping path.
            if not hasattr(exc, "trap_function"):
                exc.trap_function = self.name
                exc.trap_block_uids = block.uid_list
                exc.trap_ir_function = self.function
            raise
        finally:
            ctx._depth = depth
            # The fixed counters are linear in the block execution counts
            # (both are bumped at block entry), so they are derived here
            # instead of being accumulated inside the driver loop.
            instructions = flops = int_ops = translations = calls = 0
            counts = trace.block_counts
            stats = trace.branch_stats
            for i in range(n):
                c = block_counts[i]
                if c:
                    block = blocks[i]
                    instructions += c * block.d_instr
                    flops += c * block.d_flops
                    int_ops += c * block.d_int_ops
                    translations += c * block.d_translations
                    calls += c * block.d_calls
                    for uid in block.uid_list:
                        counts[uid] = counts.get(uid, 0) + c
                total = branch_total[i]
                if total:
                    entry = stats.setdefault(blocks[i].branch_uid, [0, 0])
                    entry[0] += branch_taken[i]
                    entry[1] += total
            trace.instructions += instructions
            trace.flops += flops
            trace.int_ops += int_ops
            trace.translations += translations
            trace.calls += calls


class CompiledEngine:
    """Drop-in replacement for :class:`~repro.exec.interp.Interpreter`
    that executes through the threaded-code cache.

    Mirrors the interpreter's constructor and ``call_function`` contract
    (device address spaces, trace lifecycle, per-engine private memory and
    memory-event sequence numbers), so the runtime can swap engines per
    launch without changing any other code.
    """

    PRIVATE_BASE = Interpreter.PRIVATE_BASE
    PRIVATE_WINDOW = Interpreter.PRIVATE_WINDOW

    def __init__(
        self,
        region,
        device: str = "cpu",
        trace: Optional[ExecTrace] = None,
        max_steps: int = _MAX_STEPS_DEFAULT,
        collect_mem_events: bool = True,
        global_id: int = 0,
        num_cores: int = 1,
        symbols: Optional[dict[int, object]] = None,
        allocator=None,
        code_cache: Optional[CodeCache] = None,
        private_pool: Optional[PrivateMemoryPool] = None,
        counters=None,
    ):
        self.region = region
        self.device = device
        self.trace = trace if trace is not None else ExecTrace()
        self.max_steps = max_steps
        self.collect_mem_events = collect_mem_events
        self.global_id = global_id
        self.num_cores = num_cores
        self.symbols = symbols or {}
        self.allocator = allocator
        if code_cache is None:
            code_cache = CodeCache(region)
        elif code_cache.region is not region:
            raise ValueError("code cache is bound to a different region")
        self.code_cache = code_cache
        self._pool = private_pool
        # Optional repro.obs.CounterRegistry; counts one engine.invocations
        # per top-level call_function (per-instruction totals come from the
        # trace, which the runtime harvests per construct).
        self.counters = counters
        self._steps = 0
        self._depth = 0
        self._mem_seq: dict[int, int] = {}
        self._priv_buf: Optional[bytearray] = None
        self._priv_dirty = 0
        self._private_next = 0x1000
        self._bind_trace()

    def _bind_trace(self) -> None:
        """Cache a fast recorder closure for the trace's event storage
        (columnar buffers take the raw-int path, lists get MemEvent
        objects)."""
        trace = self.trace
        events = trace.mem_events
        cap = trace.mem_event_cap
        if isinstance(events, MemEventColumns):
            # One length probe and one interleaved extend per event, no
            # intermediate frame.
            data = events.data
            extend = data.extend
            row_cap = cap * 5

            def record(uid, seq, address, size, is_store):
                if len(data) < row_cap:
                    extend((uid, seq, address, size, 1 if is_store else 0))
                else:
                    trace.mem_events_dropped += 1

        else:

            def record(uid, seq, address, size, is_store, _ev=events):
                if len(_ev) < cap:
                    _ev.append(MemEvent(uid, seq, address, size, is_store))
                else:
                    trace.mem_events_dropped += 1

        self._record = record

    # -- public entry points ---------------------------------------------

    def call_function(self, function: Function, args: list) -> object:
        if len(args) != len(function.args):
            raise ExecutionError(
                f"{function.name}: expected {len(function.args)} args, "
                f"got {len(args)}"
            )
        if self.counters is not None:
            self.counters.add("engine.invocations")
            self.counters.add(f"engine.invocations.{self.device}")
        compiled = self.code_cache.get(function, self.device, self.collect_mem_events)
        return compiled.invoke(self, list(args))

    # -- private memory ---------------------------------------------------

    def _acquire_private(self) -> bytearray:
        if self._pool is not None:
            buf = self._pool.acquire()
        else:
            buf = bytearray(self.PRIVATE_WINDOW + 0x1000)
        self._priv_buf = buf
        return buf

    def _alloc_private(self, size: int) -> int:
        addr = self.PRIVATE_BASE + self._private_next
        self._private_next = (self._private_next + size + 15) & ~15
        return addr

    def release_private_memory(self) -> None:
        """Return the private buffer to the pool, zeroing the written
        prefix (see :meth:`Interpreter.release_private_memory`)."""
        if self._pool is not None and self._priv_buf is not None:
            self._pool.release(self._priv_buf, self._priv_dirty)
            self._priv_buf = None
            self._priv_dirty = 0
