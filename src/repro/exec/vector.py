"""Columnar batch-execution engine: whole-chunk NumPy kernels.

The threaded-code engine (:mod:`repro.exec.compiled`) still executes one
Python closure chain *per work-item*; a ``parallel_for_hetero`` over *n*
lanes pays interpreter dispatch *n* times.  This module executes **all
lanes of a launch at once**: every SSA value becomes one ndarray column
(one element per lane), every instruction one vectorized NumPy operation,
and control-flow divergence is handled SIMT-style with per-lane state.

Design:

* **Shared lowering plan.**  Kernels are compiled from the same
  :func:`~repro.exec.compiled.plan_function` plan as the threaded-code
  engine, so superblock structure — and therefore block counts, branch
  statistics and the per-unit instruction/flop/int-op deltas — are
  identical by construction.

* **Pattern-domain registers.**  Integer and pointer values are stored as
  ``int64`` *bit patterns* (the canonical value mod 2**64); floats as
  ``float64`` (f32 values held pre-rounded through ``float32``).  Each
  compiled step knows its operands' static types, so signed/unsigned
  reinterpretation (``view(uint64)``) happens per operation, exactly
  mirroring the scalar engine's Python-int semantics.

* **Dense-frame divergence.**  Lanes are grouped into *segments*: a
  dense frame of register columns plus the machine lane ids it covers.
  A worklist scheduler always executes the lowest pending unit
  (deterministic reconvergence); a conditional branch partitions the
  frame's *live-out* columns by the branch mask (with a no-copy fast
  path when the branch is uniform), and segments arriving at the same
  unit are merged by concatenating their *live-in* columns — liveness is
  computed per unit at compile time, so compaction touches only the
  registers that can still be read.  Steps therefore always operate on
  full dense columns: there is no per-step gather/scatter through an
  active-lane index.

* **Optimistic memory with rollback.**  SVM loads/stores lower to
  gathers/scatters against the region byte array with per-lane bounds
  checks.  Every shared store is journalled (old bytes first); at launch
  end a hazard check rejects any byte stored by one lane and touched by
  another.  Any trap, hazard or unexpected error rolls the journal back
  — restoring the exact pre-launch region bytes — and raises
  :class:`VectorFallback`, so the backend reruns the span through the
  scalar engine and reproduces results, traces and error messages
  bit-for-bit.  Vectorization is therefore *never* observable, only
  faster.

* **Exact traces.**  Memory events are queued raw (one record per
  vector access, canonicalized in one batch at materialization) and
  expanded into per-lane :class:`ExecTrace` objects that replicate the
  scalar GPU backend's per-item cap budgeting, so the timing models —
  and every figure — see identical inputs.

Kernels that cannot be vectorized (virtual calls, atomics, device-side
allocation, recursion, aggregate scalars, cross-domain bitcasts) are
classified *gnarly* at compile time and permanently routed to the scalar
engine with no attempt cost.
"""

from __future__ import annotations

import math
from typing import Optional

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised only without numpy
    raise ImportError(
        "the vector engine requires numpy, which is a core dependency of "
        "this package — install it with `pip install -e .` (or `pip install "
        "numpy`); the 'compiled' and 'reference' engines work without it"
    ) from exc

from ..ir.intrinsics import MATH_EVAL
from ..ir.types import FloatType, IntType, PointerType, VoidType
from ..ir.values import Constant, Function, GlobalVariable, Instruction
from .buffers import MemEventColumns
from .compiled import (
    _DIV_OPS,
    _T_BR,
    _T_CONDBR,
    _T_RET,
    _UNSIGNED_MASK_OPS,
    plan_function,
)
from .interp import (
    _BINOP_EVAL,
    _CAST_EVAL,
    _FLOAT_OPS,
    _MAX_CALL_DEPTH,
    _MAX_STEPS_DEFAULT,
    ExecTrace,
    Interpreter,
)

__all__ = [
    "VectorCodeCache",
    "VectorFallback",
    "VectorFunction",
    "VectorMachine",
    "classify_kernel",
    "run_vectorized",
]

_MASK64 = (1 << 64) - 1
_PB = Interpreter.PRIVATE_BASE
_PRIV_LIMIT = Interpreter.PRIVATE_WINDOW + 0x1000
_PE = _PB + _PRIV_LIMIT
_PWIDTH_U = np.uint64(_PRIV_LIMIT)
_I64 = np.int64
_U64 = np.uint64
_F32_MAX = float(np.finfo(np.float32).max)
_TWO63F = float(2**63)
_TWO53F = float(2**53)

#: transcendentals evaluated element-wise through the scalar MATH_EVAL
#: table so results (and domain errors) are bit-identical to the scalar
#: engines; the cheap ones below get native NumPy fast paths with guards.
_MATH_EXACT = ("exp", "log", "sin", "cos", "tan", "pow", "atan2")


class VectorFallback(Exception):
    """A launch could not be vectorized (or failed mid-flight after a
    clean rollback); the backend must rerun it on the scalar engine."""

    def __init__(self, reason: str, sticky: bool = False):
        super().__init__(reason)
        self.reason = reason
        #: hazards are data-dependent and likely to repeat — the backend
        #: stops attempting this kernel for the rest of the runtime.
        self.sticky = sticky


class _Gnarly(Exception):
    """Compile-time: the kernel is not vectorizable."""


class _Trap(Exception):
    """Run-time: a lane hit (or may hit) a divergence from scalar
    semantics — abort, roll back, fall back."""

    sticky = False


class _Hazard(_Trap):
    sticky = True


# -- type/domain mapping ------------------------------------------------------
#
# dom "i": canonical value always fits int64 (signed ints, unsigned < 64
# bits); the int64 pattern *is* the canonical value.
# dom "u": canonical value is the uint64 view of the pattern (pointers,
# 64-bit unsigned ints).
# dom "f": float64.


def _dom(type_) -> str:
    if isinstance(type_, FloatType):
        return "f"
    if isinstance(type_, PointerType):
        return "u"
    if isinstance(type_, IntType):
        return "u" if (not type_.signed and type_.bits == 64) else "i"
    if isinstance(type_, VoidType):
        return "v"
    raise _Gnarly(f"non-scalar type {type_}")


def _dtype_of(dom: str):
    return np.float64 if dom == "f" else _I64


def _const_scalar(value, dom: str):
    """A constant in register representation: float for dom f, an int64
    pattern (as a Python int in int64 range) otherwise."""
    if dom == "f":
        return float(value)
    pattern = int(value) & _MASK64
    return pattern - (1 << 64) if pattern >= 1 << 63 else pattern


def _u64(x):
    """uint64 view of a pattern operand (ndarray or Python int)."""
    if isinstance(x, np.ndarray):
        return x.view(_U64)
    return np.uint64(int(x) & _MASK64)


def _i64(x):
    """int64 view of a uint64 result."""
    if isinstance(x, np.ndarray):
        return x.view(_I64)
    pattern = int(x) & _MASK64
    return pattern - (1 << 64) if pattern >= 1 << 63 else pattern


def _finisher_vec(type_):
    """Canonicalize an int64 pattern array to ``type_`` (the vector
    analogue of ``IntType.wrap``): sign-extend through shifts for signed
    types, mask for unsigned — identity at 64 bits."""
    bits = type_.bits
    if bits == 64:
        return None
    if type_.signed:
        sh = np.int64(64 - bits)

        def finish_signed(x):
            return (x << sh) >> sh

        return finish_signed
    mask = np.int64((1 << bits) - 1)

    def finish_unsigned(x):
        return x & mask

    return finish_unsigned


def _finish_f32(r):
    """Round a float64 result through float32, trapping where the scalar
    engine's ``struct.pack('f', ...)`` would raise OverflowError."""
    r = np.asarray(r, np.float64)
    r32 = r.astype(np.float32)
    inf32 = np.isinf(r32)
    if inf32.any():
        # rounding produced an inf: an overflow unless the input already
        # was one (legitimate infs pass through the scalar pack too).
        if bool((inf32 & np.isfinite(r)).any()):
            raise _Trap("finite float overflows f32 pack")
    return r32.astype(np.float64)


def _scalar_spec(type_):
    """(size, view_dtype, decode) for one scalar memory type, or None for
    aggregates.  ``decode`` converts the typed view to the register
    representation; encoding reverses it with C-cast truncation."""
    if isinstance(type_, IntType):
        size = type_.size()
        if type_.signed:
            vdt = {1: np.int8, 2: np.int16, 4: np.int32, 8: np.int64}[size]
        else:
            vdt = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}[size]
        if size == 8 and not type_.signed:
            return size, vdt, "view_i64"
        return size, vdt, "to_i64"
    if isinstance(type_, FloatType):
        if type_.bits == 32:
            return 4, np.float32, "to_f64"
        return 8, np.float64, "f64"
    if isinstance(type_, PointerType):
        return 8, np.uint64, "view_i64"
    return None


def _decode(raw, decode):
    if decode == "to_i64":
        return raw.astype(_I64)
    if decode == "view_i64":
        return raw.view(_I64)
    if decode == "to_f64":
        return raw.astype(np.float64)
    return raw  # f64


def _encode(vals, vdt, decode, k):
    """Register representation -> typed (k,) array of the store dtype."""
    vals = np.asarray(vals)
    if decode == "f64":
        typed = vals.astype(np.float64)
    elif decode == "to_f64":
        typed = vals.astype(np.float32)
        inf32 = np.isinf(typed)
        if inf32.any():
            if bool((inf32 & np.isfinite(vals)).any()):
                raise _Trap("finite float overflows f32 store")
    elif decode == "view_i64":
        typed = vals.view(_U64) if vals.dtype == _I64 else vals.astype(_U64)
    else:
        typed = vals.astype(vdt)
    if typed.shape != (k,):
        out = np.empty(k, typed.dtype)
        out[...] = typed
        typed = out
    return np.ascontiguousarray(typed)


def _dense_col(value, dtype, k):
    """Normalize a step result to an owned-or-shared dense (k,) column of
    ``dtype``.  Columns are never mutated in place anywhere in this
    module, so sharing an operand's array object is safe."""
    arr = np.asarray(value)
    if arr.dtype != dtype:
        arr = arr.astype(dtype)
    if arr.ndim == 0:
        out = np.empty(k, dtype)
        out[...] = arr
        return out
    return arr


def _addr_col(a, k):
    """Normalize an address operand to an int64 pattern column."""
    if isinstance(a, np.ndarray) and a.shape == (k,):
        return a
    out = np.empty(k, _I64)
    out[...] = a
    return out


# -- the machine: per-launch shared state -------------------------------------


class VectorMachine:
    """All mutable launch state: region views, journals, hazard marks,
    per-lane step/trace accumulators, and lazily-grown private memory."""

    def __init__(self, rt, span, num_cores: int):
        region = rt.region
        self.region = region
        self.n = len(span)
        self.global_ids = np.fromiter(span, _I64, self.n)
        self.lane_ids = np.arange(self.n, dtype=_I64)
        self.u8 = np.frombuffer(region.physical.data, np.uint8)
        self.limit = region.size
        self.base_u = np.uint64(region.gpu_base & _MASK64)
        surf = region.surface
        self.cbase_u = np.uint64(region.gpu_base & _MASK64)
        self.cend_u = np.uint64((region.gpu_base + surf.size) & _MASK64)
        self.svm_u = np.uint64(region.svm_const & _MASK64)
        self.collect = rt.collect_mem_events
        self.max_steps = _MAX_STEPS_DEFAULT
        self.num_cores = num_cores
        self._views: dict = {}
        self.records: list = []  # chronological (uid, lanes, addr, size, st)
        self.smarks: list = []  # (offsets, size, lanes) of shared stores
        self.lmarks: list = []  # (offsets, size, lanes) of shared loads
        self.journal: list = []  # (byte-offset matrix, old bytes)
        self.counts: dict = {}  # id(vfn) -> (vfn, hit lists, taken lists)
        self.steps = np.zeros(self.n, _I64)
        self.step_acc: list = []  # (lanes, n_steps) pending settlement
        self.step_hi = 0  # scalar upper bound on any lane's step count
        self.depth = 0
        self.priv = None
        self.priv_w = 0
        self.priv_next = np.full(self.n, 0x1000, _I64)
        self.has_private = False
        self.occ_active = 0
        self.occ_slots = 0

    # -- accounting -------------------------------------------------------

    def counts_for(self, vfn):
        """Per-unit deferred accumulators: ``hits[u]`` collects the lane
        array of every execution of unit ``u``, ``tks[u]`` the lanes that
        took the branch.  Appending a reference is safe because lane
        arrays are never mutated; :meth:`_settled_counts` folds them into
        dense per-lane matrices once per launch."""
        entry = self.counts.get(id(vfn))
        if entry is None:
            units = len(vfn.units)
            entry = (
                vfn,
                [[] for _ in range(units)],
                [[] for _ in range(units)],
            )
            self.counts[id(vfn)] = entry
        return entry[1], entry[2]

    def _settled_counts(self):
        n = self.n
        for vfn, hits, tks in self.counts.values():
            units = len(vfn.units)
            counts = np.zeros((units, n), _I64)
            taken = np.zeros((units, n), _I64)
            for u in range(units):
                h = hits[u]
                if h:
                    if len(h) == 1:
                        counts[u][h[0]] += 1
                    else:
                        counts[u] = np.bincount(
                            np.concatenate(h), minlength=n
                        ).astype(_I64, copy=False)
                t = tks[u]
                if t:
                    if len(t) == 1:
                        taken[u][t[0]] += 1
                    else:
                        taken[u] = np.bincount(
                            np.concatenate(t), minlength=n
                        ).astype(_I64, copy=False)
            yield vfn, counts, taken

    def settle_steps(self, max_steps: int, name: str):
        """Fold the pending (lanes, n_steps) batches into the exact
        per-lane step counts and re-check the limit.  ``step_hi`` tracks
        a scalar upper bound between settlements (every lane's true count
        is at most the settled peak plus the pending batch sum), so the
        exact fold only runs when the bound crosses the limit."""
        steps = self.steps
        for lanes, ns in self.step_acc:
            steps[lanes] += ns
        self.step_acc.clear()
        peak = int(steps.max()) if len(steps) else 0
        self.step_hi = peak
        if peak > max_steps:
            raise _Trap(f"step limit exceeded in {name}")

    # -- memory -----------------------------------------------------------

    def _view(self, vdt):
        key = np.dtype(vdt)
        view = self._views.get(key)
        if view is None:
            view = self._views[key] = self.u8.view(vdt)
        return view

    def _bounds(self, au, size):
        off_u = au - self.base_u
        if bool((off_u > np.uint64(self.limit - size)).any()):
            raise _Trap("address outside the shared surface")
        return off_u.view(_I64)

    def load_shared(self, addr_i64, size, vdt, decode, mids):
        au = addr_i64.view(_U64)
        offs = self._bounds(au, size)
        self.lmarks.append((offs, size, mids))
        if size == 1:
            raw = self.u8[offs].view(vdt)
        elif not bool((offs & (size - 1)).any()):
            raw = self._view(vdt)[offs >> _SHIFT[size]]
        else:
            mat = offs[:, None] + np.arange(size, dtype=_I64)
            raw = self.u8[mat].view(vdt)[:, 0]
        return _decode(raw, decode)

    def store_shared(self, addr_i64, vals, size, vdt, decode, mids):
        k = len(mids)
        au = addr_i64.view(_U64)
        offs = self._bounds(au, size)
        typed = _encode(vals, vdt, decode, k)
        self.smarks.append((offs, size, mids))
        mat = offs[:, None] + np.arange(size, dtype=_I64)
        old = self.u8[mat]
        self.journal.append((mat, old))
        self.u8[mat] = typed.view(np.uint8).reshape(k, size)

    # -- private (alloca) memory ------------------------------------------

    def _priv_ensure(self, need: int):
        if need > _PRIV_LIMIT:
            raise _Trap("private access beyond the window")
        if need <= self.priv_w:
            return
        width = max(4096, self.priv_w)
        while width < need:
            width *= 2
        width = min(width, _PRIV_LIMIT)
        fresh = np.zeros((self.n, width), np.uint8)
        if self.priv is not None:
            fresh[:, : self.priv_w] = self.priv
        self.priv = fresh
        self.priv_w = width

    def alloc_private(self, mids, size: int):
        self.has_private = True
        old = self.priv_next[mids]
        self.priv_next[mids] = (old + size + 15) & ~np.int64(15)
        return _PB + old

    def load_private(self, addr_i64, size, vdt, decode, mids):
        offs = addr_i64 - np.int64(_PB)
        if bool((offs < 0).any()):
            raise _Trap("negative private offset")
        self._priv_ensure(int(offs.max()) + size)
        mat = offs[:, None] + np.arange(size, dtype=_I64)
        raw = self.priv[mids[:, None], mat].view(vdt)[:, 0]
        return _decode(raw, decode)

    def store_private(self, addr_i64, vals, size, vdt, decode, mids):
        k = len(mids)
        offs = addr_i64 - np.int64(_PB)
        if bool((offs < 0).any()):
            raise _Trap("negative private offset")
        self._priv_ensure(int(offs.max()) + size)
        typed = _encode(vals, vdt, decode, k)
        mat = offs[:, None] + np.arange(size, dtype=_I64)
        self.priv[mids[:, None], mat] = typed.view(np.uint8).reshape(k, size)

    # -- load/store dispatch (mixed private/shared lanes split) -----------

    def load(self, uid, addr_i64, size, vdt, decode, out_dtype, mids):
        # Fast path: the private window lives outside the shared surface,
        # so one folded bounds check covers both "all in bounds" and "no
        # private lanes" at once (below-base addresses wrap to huge
        # uint64 offsets and fail it too).
        off_u = addr_i64.view(_U64) - self.base_u
        if not bool((off_u > np.uint64(self.limit - size)).any()):
            if self.collect:
                self.records.append((uid, mids, addr_i64, size, False))
            offs = off_u.view(_I64)
            self.lmarks.append((offs, size, mids))
            if size == 1:
                raw = self.u8[offs].view(vdt)
            elif not bool((offs & (size - 1)).any()):
                raw = self._view(vdt)[offs >> _SHIFT[size]]
            else:
                mat = offs[:, None] + np.arange(size, dtype=_I64)
                raw = self.u8[mat].view(vdt)[:, 0]
            return _decode(raw, decode)
        if not self.has_private:
            # no alloca has run: a stray private-window address must fail
            # the bounds check and fall back, reproducing the scalar
            # behaviour exactly.
            raise _Trap("address outside the shared surface")
        au = addr_i64.view(_U64)
        pm = (au - _PB_U) < _PWIDTH_U
        if bool(pm.all()):
            return self.load_private(addr_i64, size, vdt, decode, mids)
        if not bool(pm.any()):
            raise _Trap("address outside the shared surface")
        out = np.empty(len(mids), out_dtype)
        sh = ~pm
        sa, sm = addr_i64[sh], mids[sh]
        if self.collect:
            self.records.append((uid, sm, sa, size, False))
        out[sh] = self.load_shared(sa, size, vdt, decode, sm)
        out[pm] = self.load_private(addr_i64[pm], size, vdt, decode, mids[pm])
        return out

    def store(self, uid, addr_i64, vals, size, vdt, decode, mids):
        off_u = addr_i64.view(_U64) - self.base_u
        if not bool((off_u > np.uint64(self.limit - size)).any()):
            if self.collect:
                self.records.append((uid, mids, addr_i64, size, True))
            k = len(mids)
            offs = off_u.view(_I64)
            typed = _encode(vals, vdt, decode, k)
            self.smarks.append((offs, size, mids))
            mat = offs[:, None] + np.arange(size, dtype=_I64)
            self.journal.append((mat, self.u8[mat]))
            self.u8[mat] = typed.view(np.uint8).reshape(k, size)
            return
        if not self.has_private:
            raise _Trap("address outside the shared surface")
        au = addr_i64.view(_U64)
        pm = (au - _PB_U) < _PWIDTH_U
        if not bool(pm.any()):
            raise _Trap("address outside the shared surface")
        vals = np.asarray(vals)
        if vals.shape != (len(mids),):
            col = np.empty(len(mids), vals.dtype)
            col[...] = vals
            vals = col
        if bool(pm.all()):
            self.store_private(addr_i64, vals, size, vdt, decode, mids)
            return
        sh = ~pm
        sa, sm = addr_i64[sh], mids[sh]
        if self.collect:
            self.records.append((uid, sm, sa, size, True))
        self.store_shared(sa, vals[sh], size, vdt, decode, sm)
        self.store_private(addr_i64[pm], vals[pm], size, vdt, decode, mids[pm])

    # -- rollback + hazard detection --------------------------------------

    def rollback(self):
        """Restore every journalled store in reverse order: the region is
        byte-identical to its pre-launch state."""
        u8 = self.u8
        for mat, old in reversed(self.journal):
            u8[mat] = old
        self.journal.clear()

    def check_hazards(self):
        """Reject the launch if any byte stored by one lane was stored or
        loaded by a different lane: under sequential lane order those
        accesses observe intermediate states the columnar schedule cannot
        reproduce."""
        if not self.smarks:
            return
        offs_parts, own_parts = [], []
        for offs, size, mids in self.smarks:
            mat = offs[:, None] + np.arange(size, dtype=_I64)
            offs_parts.append(mat.ravel())
            own_parts.append(np.repeat(mids, size))
        soff = np.concatenate(offs_parts)
        sown = np.concatenate(own_parts)
        order = np.argsort(soff, kind="stable")
        so = soff[order]
        ow = sown[order]
        if len(so) > 1:
            dup = so[1:] == so[:-1]
            if bool((dup & (ow[1:] != ow[:-1])).any()):
                raise _Hazard("cross-lane store-store collision")
            keep = np.empty(len(so), bool)
            keep[0] = True
            keep[1:] = ~dup
            so = so[keep]
            ow = ow[keep]
        lo, hi = int(so[0]), int(so[-1])
        for offs, size, mids in self.lmarks:
            cand = (offs >= lo - 8) & (offs <= hi)
            if not bool(cand.any()):
                continue
            co = offs[cand]
            cm = mids[cand]
            mat = (co[:, None] + np.arange(size, dtype=_I64)).ravel()
            readers = np.repeat(cm, size)
            pos = np.searchsorted(so, mat)
            pos = np.minimum(pos, len(so) - 1)
            hit = so[pos] == mat
            if bool((hit & (ow[pos] != readers)).any()):
                raise _Hazard("cross-lane store-load overlap")

    # -- trace materialization --------------------------------------------

    def materialize(self, budget: int) -> list:
        """Per-lane :class:`ExecTrace` objects replicating the scalar GPU
        backend's event-cap budgeting and the threaded-code engine's
        derived counters, in span order."""
        n = self.n
        instructions = np.zeros(n, _I64)
        flops = np.zeros(n, _I64)
        int_ops = np.zeros(n, _I64)
        translations = np.zeros(n, _I64)
        calls = np.zeros(n, _I64)
        uid_totals: dict = {}  # block uid -> per-lane count vector
        stat_totals: dict = {}  # branch uid -> [taken vector, total vector]
        for vfn, counts, taken in self._settled_counts():
            instructions += vfn.d_instr_vec @ counts
            flops += vfn.d_flops_vec @ counts
            int_ops += vfn.d_int_ops_vec @ counts
            translations += vfn.d_translations_vec @ counts
            calls += vfn.d_calls_vec @ counts
            for u, unit in enumerate(vfn.units):
                row = counts[u]
                if not row.any():
                    continue
                for uid in unit.uid_list:
                    t = uid_totals.get(uid)
                    if t is None:
                        uid_totals[uid] = row.copy()
                    else:
                        t += row
                if unit.kind == _T_CONDBR:
                    st = stat_totals.get(unit.branch_uid)
                    if st is None:
                        stat_totals[unit.branch_uid] = [
                            taken[u].copy(),
                            row.copy(),
                        ]
                    else:
                        st[0] += taken[u]
                        st[1] += row
        block_items = [(uid, t.tolist()) for uid, t in uid_totals.items()]
        stat_items = [
            (buid, tk.tolist(), tt.tolist())
            for buid, (tk, tt) in stat_totals.items()
        ]

        lane_rows, starts, ends = self._event_rows()
        per_item = max(1000, budget // max(1, n))
        kept = 0
        traces = []
        for lane in range(n):
            blocks = {}
            for uid, tl in block_items:
                c = tl[lane]
                if c:
                    blocks[uid] = c
            stats = {}
            for buid, tk, tt in stat_items:
                c = tt[lane]
                if c:
                    stats[buid] = [tk[lane], c]
            cap = min(per_item, max(0, budget - kept))
            cols = MemEventColumns()
            total = 0
            if lane_rows is not None:
                s, e = starts[lane], ends[lane]
                total = e - s
                take = min(total, cap)
                if take:
                    cols.data.frombytes(lane_rows[s : s + take].tobytes())
                kept += take
            traces.append(
                ExecTrace(
                    instructions=int(instructions[lane]),
                    block_counts=blocks,
                    branch_stats=stats,
                    mem_events=cols,
                    mem_event_cap=cap,
                    mem_events_dropped=total - min(total, cap),
                    flops=int(flops[lane]),
                    int_ops=int(int_ops[lane]),
                    translations=int(translations[lane]),
                    calls=int(calls[lane]),
                )
            )
        return traces

    def _event_rows(self):
        """Sort the chronological event records per lane, canonicalize
        addresses in one batch, derive per-(lane, uid) sequence numbers,
        and build (E, 5) uint64 rows."""
        if not self.records:
            return None, None, None
        lane_parts, uid_parts, addr_parts, size_parts, st_parts = (
            [],
            [],
            [],
            [],
            [],
        )
        for uid, mids, addr, size, is_store in self.records:
            k = len(mids)
            lane_parts.append(mids)
            uid_parts.append(np.full(k, uid, _U64))
            addr_parts.append(addr)
            size_parts.append(np.full(k, size, _U64))
            st_parts.append(np.full(k, 1 if is_store else 0, _U64))
        lanes = np.concatenate(lane_parts)
        uids = np.concatenate(uid_parts)
        au = np.concatenate(addr_parts).view(_U64)
        in_surface = (au >= self.cbase_u) & (au < self.cend_u)
        addrs = np.where(in_surface, au - self.svm_u, au)
        sizes = np.concatenate(size_parts)
        sts = np.concatenate(st_parts)
        order = np.argsort(lanes, kind="stable")  # chronological per lane
        lanes = lanes[order]
        uids = uids[order]
        addrs = addrs[order]
        sizes = sizes[order]
        sts = sts[order]
        key = (lanes.astype(_U64) << np.uint64(32)) | uids
        perm = np.argsort(key, kind="stable")
        sk = key[perm]
        fresh = np.empty(len(sk), bool)
        fresh[0] = True
        fresh[1:] = sk[1:] != sk[:-1]
        group_start = np.flatnonzero(fresh)
        span_starts = np.repeat(
            group_start, np.diff(np.append(group_start, len(sk)))
        )
        seqs = np.empty(len(sk), _U64)
        seqs[perm] = (np.arange(len(sk)) - span_starts).astype(_U64)
        rows = np.empty((len(sk), 5), _U64)
        rows[:, 0] = uids
        rows[:, 1] = seqs
        rows[:, 2] = addrs
        rows[:, 3] = sizes
        rows[:, 4] = sts
        grid = np.arange(self.n, dtype=_I64)
        starts = np.searchsorted(lanes, grid, side="left")
        ends = np.searchsorted(lanes, grid, side="right")
        return rows, starts, ends


_SHIFT = {1: 0, 2: 1, 4: 2, 8: 3}
_PB_U = np.uint64(_PB)
_PE_U = np.uint64(_PE)
_ZERO_U = np.uint64(0)
_SIX3_U = np.uint64(63)

_NPCMP = {
    "eq": np.equal,
    "ne": np.not_equal,
    "slt": np.less,
    "sle": np.less_equal,
    "sgt": np.greater,
    "sge": np.greater_equal,
    "oeq": np.equal,
    "one": np.not_equal,
    "olt": np.less,
    "ole": np.less_equal,
    "ogt": np.greater,
    "oge": np.greater_equal,
}
_UPRED = {
    "ult": np.less,
    "ule": np.less_equal,
    "ugt": np.greater,
    "uge": np.greater_equal,
}


def _require_nonneg(x):
    """Signed-sensitive op on a dom-u (pointer / u64) value: the scalar
    engine computes on the *canonical* value, which only agrees with our
    int64/uint64 pattern views while the pattern is non-negative.  Values
    outside that range arise only from already-broken address arithmetic
    — trap and let the scalar engine produce its exact behaviour."""
    if isinstance(x, np.ndarray):
        if bool((x < 0).any()):
            raise _Trap("u64 pattern outside the vector-safe range")
    elif x < 0:
        raise _Trap("u64 pattern outside the vector-safe range")


def _as_pattern(x):
    """Normalize an op result (uint64/bool array or scalar) to an int64
    pattern column or in-range Python int."""
    if isinstance(x, np.ndarray):
        return x.view(_I64) if x.dtype == _U64 else x.astype(_I64)
    return _const_scalar(int(x), "i")


# -- operand getters ----------------------------------------------------------
#
# Dense getters: ``get(regs)`` returns the full dense column for SSA
# values (the frame is compacted per segment, so no index is needed), a
# folded scalar for constants, a late-bound address for globals.


def _is_col(value, slots) -> bool:
    return id(value) in slots


def _get_pat(value, slots):
    if isinstance(value, Constant):
        if _dom(value.type) == "f":
            raise _Gnarly("float constant in integer context")
        return lambda regs, _c=_const_scalar(value.value, "i"): _c
    if isinstance(value, GlobalVariable):

        def read_global(regs, _gv=value):
            address = _gv.address
            if address is None:
                raise _Trap(f"global @{_gv.name} has no address (not loaded)")
            return address

        return read_global
    slot = slots.get(id(value))
    if slot is None:
        raise _Gnarly(f"use of undefined value {value!r}")
    if _dom(value.type) == "f":
        raise _Gnarly("float value in integer context")

    def read(regs, _s=slot):
        return regs[_s]

    return read


def _get_f(value, slots):
    if isinstance(value, Constant):
        return lambda regs, _c=float(value.value): _c
    slot = slots.get(id(value))
    if slot is None or _dom(value.type) != "f":
        raise _Gnarly("non-float value in float context")

    def read(regs, _s=slot):
        return regs[_s]

    return read


def _get_dom(value, slots, dom):
    return _get_f(value, slots) if dom == "f" else _get_pat(value, slots)


def _error_step(message):
    def step_error(m, regs, lanes, _msg=message):
        raise _Trap(_msg)

    return step_error


# -- per-opcode vector lowering ----------------------------------------------


def _account(instr, unit) -> None:
    """Identical to CompiledFunction._account — the per-unit counter
    deltas must match the threaded-code engine bit-for-bit."""
    op = instr.op
    if op == "gep":
        unit.d_int_ops += 1
    elif op == "icmp":
        unit.d_int_ops += 1
    elif op == "fcmp":
        unit.d_flops += 1
    elif op in _BINOP_EVAL:
        if op in _FLOAT_OPS:
            unit.d_flops += 1
        else:
            unit.d_int_ops += 1
    elif op == "call":
        callee = instr.callee
        if isinstance(callee, Function):
            unit.d_calls += 1
        else:
            name = getattr(callee, "name", "")
            if name in ("svm.to_gpu", "svm.to_cpu"):
                unit.d_translations += 1
                unit.d_int_ops += 1
            elif name.startswith("math."):
                unit.d_flops += 4


def _gep_addr(instr, slots):
    """Address closure for a gep: used both for the standalone gep step
    and for geps fused into their single consuming load/store."""
    get_base = _get_pat(instr.operands[0], slots)
    offset_u = np.uint64(instr.gep_offset & _MASK64)
    pairs = [
        (_get_pat(value, slots), np.uint64(scale & _MASK64))
        for value, scale in zip(instr.operands[1:], instr.gep_scales)
    ]

    def addr(regs):
        acc = _u64(get_base(regs)) + offset_u
        for get, scale in pairs:
            acc = acc + _u64(get(regs)) * scale
        return _as_pattern(np.asarray(acc))

    return addr


def _compile_load(instr, slots, fused_addr=None):
    spec = _scalar_spec(instr.type)
    if spec is None:
        raise _Gnarly("aggregate load")
    size, vdt, decode = spec
    out_dom = _dom(instr.type)
    out_dtype = _dtype_of(out_dom)
    get_addr = (
        fused_addr
        if fused_addr is not None
        else _get_pat(instr.operands[0], slots)
    )
    slot = slots[id(instr)]
    uid = instr.uid

    def step_load(m, regs, lanes):
        addr = _addr_col(get_addr(regs), len(lanes))
        # m.load always returns a dense (k,) column of out_dtype.
        regs[slot] = m.load(uid, addr, size, vdt, decode, out_dtype, lanes)

    return step_load


def _compile_store(instr, slots, fused_addr=None):
    type_ = instr.operands[0].type
    spec = _scalar_spec(type_)
    if spec is None:
        raise _Gnarly("aggregate store")
    size, vdt, decode = spec
    get_value = _get_dom(instr.operands[0], slots, _dom(type_))
    get_addr = (
        fused_addr
        if fused_addr is not None
        else _get_pat(instr.operands[1], slots)
    )
    uid = instr.uid

    def step_store(m, regs, lanes):
        k = len(lanes)
        value = get_value(regs)
        addr = _addr_col(get_addr(regs), k)
        m.store(uid, addr, value, size, vdt, decode, lanes)

    return step_store


def _compile_gep(instr, slots):
    slot = slots[id(instr)]
    addr = _gep_addr(instr, slots)

    def step_gep(m, regs, lanes):
        regs[slot] = _dense_col(addr(regs), _I64, len(lanes))

    return step_gep


def _compile_compare(instr, slots):
    pred = instr.pred
    slot = slots[id(instr)]
    a0, a1 = instr.operands[0], instr.operands[1]
    if instr.op == "icmp" and pred.startswith("u"):
        cmpfn = _UPRED.get(pred)
        if cmpfn is None:
            raise _Gnarly(f"icmp predicate {pred}")
        type0 = a0.type
        bits = type0.bits if isinstance(type0, IntType) else 64
        mask = np.uint64((1 << bits) - 1)
        ga = _get_pat(a0, slots)
        gb = _get_pat(a1, slots)

        def step_ucmp(m, regs, lanes):
            a = _u64(ga(regs)) & mask
            b = _u64(gb(regs)) & mask
            regs[slot] = _dense_col(cmpfn(a, b), _I64, len(lanes))

        return step_ucmp
    cmpfn = _NPCMP.get(pred)
    if cmpfn is None:
        raise _Gnarly(f"{instr.op} predicate {pred}")
    d0, d1 = _dom(a0.type), _dom(a1.type)
    if instr.op == "fcmp" or d0 == "f" or d1 == "f":
        ga = _get_f(a0, slots)
        gb = _get_f(a1, slots)

        def step_fcmp(m, regs, lanes):
            regs[slot] = _dense_col(cmpfn(ga(regs), gb(regs)), _I64, len(lanes))

        return step_fcmp
    ga = _get_pat(a0, slots)
    gb = _get_pat(a1, slots)
    if "u" in (d0, d1):

        def step_icmp_guard(m, regs, lanes):
            a = ga(regs)
            b = gb(regs)
            _require_nonneg(a)
            _require_nonneg(b)
            regs[slot] = _dense_col(cmpfn(a, b), _I64, len(lanes))

        return step_icmp_guard

    def step_icmp(m, regs, lanes):
        regs[slot] = _dense_col(cmpfn(ga(regs), gb(regs)), _I64, len(lanes))

    return step_icmp


def _compile_binop(instr, slots):
    op = instr.op
    type_ = instr.type
    slot = slots[id(instr)]
    a0, a1 = instr.operands[0], instr.operands[1]
    dense = _is_col(a0, slots) or _is_col(a1, slots)
    if op in _FLOAT_OPS:
        if not isinstance(type_, FloatType):
            raise _Gnarly(f"{op} on non-float type")
        f32 = type_.bits == 32
        ga = _get_f(a0, slots)
        gb = _get_f(a1, slots)
        if op in ("fadd", "fsub", "fmul") and not f32 and dense:
            # hottest path: one ufunc call, result already dense f64.
            ufunc = {
                "fadd": np.add,
                "fsub": np.subtract,
                "fmul": np.multiply,
            }[op]

            def step_ffast(m, regs, lanes):
                regs[slot] = ufunc(ga(regs), gb(regs))

            return step_ffast
        if op == "fadd":

            def compute(a, b):
                return a + b

        elif op == "fsub":

            def compute(a, b):
                return a - b

        elif op == "fmul":

            def compute(a, b):
                return a * b

        elif op == "fdiv":
            # b == 0 mirrors the interpreter's explicit IEEE-ish branch:
            # copysign(inf, a) for a != 0 (nan included), nan otherwise.
            def compute(a, b):
                a = np.asarray(a, np.float64)
                b = np.asarray(b, np.float64)
                ok = b != 0.0
                if bool(ok.all()):
                    return a / b
                safe = np.where(ok, b, 1.0)
                return np.where(
                    ok,
                    a / safe,
                    np.where(a != 0.0, np.copysign(np.inf, a), np.nan),
                )

        else:  # frem — math.fmod raises for inf dividend or zero divisor

            def compute(a, b):
                a = np.asarray(a, np.float64)
                b = np.asarray(b, np.float64)
                if bool((b == 0.0).any()) or bool(np.isinf(a).any()):
                    raise _Trap("fmod domain error")
                return np.fmod(a, b)

        if f32:

            def step_fbin32(m, regs, lanes):
                r = compute(ga(regs), gb(regs))
                regs[slot] = _dense_col(_finish_f32(r), np.float64, len(lanes))

            return step_fbin32

        def step_fbin(m, regs, lanes):
            r = compute(ga(regs), gb(regs))
            regs[slot] = _dense_col(r, np.float64, len(lanes))

        return step_fbin

    if not isinstance(type_, IntType):
        raise _Gnarly(f"{op} on non-int type")
    fin = _finisher_vec(type_)
    tmask = np.uint64((1 << type_.bits) - 1)
    da, db = _dom(a0.type), _dom(a1.type)
    ga = _get_pat(a0, slots)
    gb = _get_pat(a1, slots)

    if op in ("add", "sub", "mul", "and", "or", "xor"):
        ufunc = {
            "add": np.add,
            "sub": np.subtract,
            "mul": np.multiply,
            "and": np.bitwise_and,
            "or": np.bitwise_or,
            "xor": np.bitwise_xor,
        }[op]
        if dense and fin is None:
            # int64 wraps == mod-2**64 pattern arithmetic; no finisher
            # at 64 bits, so a single ufunc call suffices.
            def step_bfast(m, regs, lanes):
                regs[slot] = ufunc(ga(regs), gb(regs))

            return step_bfast

        def step_bin(m, regs, lanes):
            r = ufunc(ga(regs), gb(regs))
            if not isinstance(r, np.ndarray):
                r = np.int64(_const_scalar(int(r), "i"))
            if fin is not None:
                r = fin(r)
            regs[slot] = _dense_col(r, _I64, len(lanes))

        return step_bin

    if op == "shl":

        def step_shl(m, regs, lanes):
            a = _u64(ga(regs))
            b = _u64(gb(regs))
            r = _as_pattern(np.asarray(a << (b & _SIX3_U)))
            if not isinstance(r, np.ndarray):
                r = np.int64(r)
            if fin is not None:
                r = fin(r)
            regs[slot] = _dense_col(r, _I64, len(lanes))

        return step_shl

    if op == "lshr":
        # pre-masked op: both operands are reduced to the result width
        # first, exactly as the scalar engines do.
        def step_lshr(m, regs, lanes):
            a = _u64(ga(regs)) & tmask
            b = _u64(gb(regs)) & tmask
            r = _as_pattern(np.asarray(a >> (b & _SIX3_U)))
            if not isinstance(r, np.ndarray):
                r = np.int64(r)
            if fin is not None:
                r = fin(r)
            regs[slot] = _dense_col(r, _I64, len(lanes))

        return step_lshr

    if op == "ashr":

        def step_ashr(m, regs, lanes):
            a = ga(regs)
            b = gb(regs)
            if da == "u":
                _require_nonneg(a)
            if db == "u":
                _require_nonneg(b)
            aa = np.asarray(a, _I64)
            sh = np.asarray(b, _I64) & np.int64(63)
            r = aa >> sh
            if fin is not None:
                r = fin(r)
            regs[slot] = _dense_col(r, _I64, len(lanes))

        return step_ashr

    if op in ("udiv", "urem"):
        div = op == "udiv"

        def step_udiv(m, regs, lanes):
            a = _u64(ga(regs)) & tmask
            b = np.asarray(_u64(gb(regs)) & tmask)
            if bool((b == 0).any()):
                raise _Trap("division by zero")
            r = _as_pattern(np.asarray(a // b if div else a % b))
            if not isinstance(r, np.ndarray):
                r = np.int64(r)
            if fin is not None:
                r = fin(r)
            regs[slot] = _dense_col(r, _I64, len(lanes))

        return step_udiv

    if op in ("sdiv", "srem"):
        rem = op == "srem"

        def step_sdiv(m, regs, lanes):
            a = ga(regs)
            b = gb(regs)
            if da == "u":
                _require_nonneg(a)
            if db == "u":
                _require_nonneg(b)
            aa = np.asarray(a, _I64)
            bb = np.asarray(b, _I64)
            if bool((bb == 0).any()):
                raise _Trap("division by zero")
            # truncating signed division via unsigned magnitudes — exact
            # for INT64_MIN where abs() would overflow.
            ua = aa.view(_U64)
            ub = bb.view(_U64)
            neg_a = aa < 0
            neg_b = bb < 0
            ma = np.where(neg_a, (~ua) + np.uint64(1), ua)
            mb = np.where(neg_b, (~ub) + np.uint64(1), ub)
            q = ma // mb
            qp = np.where(neg_a ^ neg_b, (~q) + np.uint64(1), q)
            if rem:
                r = (ua - qp * ub).view(_I64)
            else:
                r = qp.view(_I64)
            if fin is not None:
                r = fin(r)
            regs[slot] = _dense_col(r, _I64, len(lanes))

        return step_sdiv

    raise _Gnarly(f"binop {op}")


def _compile_cast(instr, slots):
    op = instr.op
    type_ = instr.type
    slot = slots[id(instr)]
    value = instr.operands[0]
    sd = _dom(value.type)

    if op in ("zext", "sext", "trunc", "ptrtoint"):
        if sd == "f" or not isinstance(type_, IntType):
            raise _Gnarly(f"{op} across domains")
        fin = _finisher_vec(type_)
        get = _get_pat(value, slots)
        if fin is None and _is_col(value, slots):

            def step_icopy(m, regs, lanes):
                regs[slot] = get(regs)

            return step_icopy

        def step_icast(m, regs, lanes):
            r = get(regs)
            if not isinstance(r, np.ndarray):
                r = np.int64(r)
            if fin is not None:
                r = fin(r)
            regs[slot] = _dense_col(r, _I64, len(lanes))

        return step_icast

    if op == "inttoptr":
        if sd == "f":
            raise _Gnarly("inttoptr from float")
        get = _get_pat(value, slots)

        def step_i2p(m, regs, lanes):
            regs[slot] = _dense_col(get(regs), _I64, len(lanes))

        return step_i2p

    if op == "bitcast":
        td = _dom(type_)
        if (sd == "f") != (td == "f"):
            raise _Gnarly("cross-domain bitcast")
        get = _get_dom(value, slots, sd)
        dt = _dtype_of(td)

        def step_bitcast(m, regs, lanes):
            regs[slot] = _dense_col(get(regs), dt, len(lanes))

        return step_bitcast

    if op in ("sitofp", "uitofp"):
        if sd == "f" or not isinstance(type_, FloatType):
            raise _Gnarly(f"{op} across domains")
        f32 = type_.bits == 32
        unsigned = op == "uitofp"
        get = _get_pat(value, slots)

        def step_itof(m, regs, lanes):
            a = get(regs)
            if unsigned:
                r = np.asarray(_u64(a)).astype(np.float64)
            else:
                if sd == "u":
                    _require_nonneg(a)
                r = np.asarray(a, _I64).astype(np.float64)
            if f32:
                r = r.astype(np.float32).astype(np.float64)
            regs[slot] = _dense_col(r, np.float64, len(lanes))

        return step_itof

    if op == "fptosi":
        if not isinstance(type_, IntType):
            raise _Gnarly("fptosi to non-int")
        fin = _finisher_vec(type_)
        get = _get_f(value, slots)

        def step_ftoi(m, regs, lanes):
            a = np.asarray(get(regs), np.float64)
            # int(nan/inf) raises in the scalar engines; huge finite
            # doubles convert via arbitrary precision — both trap here.
            if bool((np.isnan(a) | (a >= _TWO63F) | (a < -_TWO63F)).any()):
                raise _Trap("fptosi outside the int64-exact range")
            r = a.astype(_I64)
            if fin is not None:
                r = fin(r)
            regs[slot] = _dense_col(r, _I64, len(lanes))

        return step_ftoi

    if op == "fpext":
        if sd != "f":
            raise _Gnarly("fpext from non-float")
        get = _get_f(value, slots)

        def step_fpext(m, regs, lanes):
            regs[slot] = _dense_col(get(regs), np.float64, len(lanes))

        return step_fpext

    if op == "fptrunc":
        if sd != "f":
            raise _Gnarly("fptrunc from non-float")
        get = _get_f(value, slots)

        def step_fptrunc(m, regs, lanes):
            regs[slot] = _dense_col(
                _finish_f32(get(regs)), np.float64, len(lanes)
            )

        return step_fptrunc

    raise _Gnarly(f"cast {op}")


def _compile_select(instr, slots):
    slot = slots[id(instr)]
    rd = _dom(instr.type)
    if rd == "v":
        raise _Gnarly("void select")
    cd = _dom(instr.operands[0].type)
    get_cond = _get_dom(instr.operands[0], slots, cd)
    get_true = _get_dom(instr.operands[1], slots, rd)
    get_false = _get_dom(instr.operands[2], slots, rd)
    zero = 0.0 if cd == "f" else 0
    dt = _dtype_of(rd)

    def step_select(m, regs, lanes):
        cond = np.asarray(get_cond(regs)) != zero
        r = np.where(cond, get_true(regs), get_false(regs))
        regs[slot] = _dense_col(r, dt, len(lanes))

    return step_select


def _compile_math(instr, name, slots):
    short = name.split(".")[1]
    fn = MATH_EVAL.get(short)
    if fn is None:
        raise _Gnarly(f"unknown intrinsic {name}")
    f32 = name.endswith(".f32")
    gets = [_get_f(v, slots) for v in instr.operands]
    slot = slots[id(instr)]
    arity = len(gets)

    if arity == 1 and short in ("sqrt", "rsqrt", "fabs", "floor", "ceil"):
        get = gets[0]

        def compute1(a):
            if short == "sqrt":
                if bool((a < 0).any()):
                    raise _Trap("sqrt of a negative")
                return np.sqrt(a)
            if short == "rsqrt":
                # math.sqrt domain error, or 1.0/0.0 ZeroDivisionError
                if bool((a <= 0).any()):
                    raise _Trap("rsqrt domain error")
                return 1.0 / np.sqrt(a)
            if short == "fabs":
                return np.abs(a)
            # floor/ceil: the scalar engines return exact Python ints —
            # beyond 2**53 those diverge from float64, and non-finite
            # inputs raise.
            if bool((~np.isfinite(a)).any()):
                raise _Trap("floor/ceil of a non-finite")
            if not f32 and bool((np.abs(a) >= _TWO53F).any()):
                raise _Trap("floor/ceil beyond float64-exact integers")
            return np.floor(a) if short == "floor" else np.ceil(a)

        def step_math1(m, regs, lanes):
            r = compute1(np.asarray(get(regs), np.float64))
            if f32:
                r = _finish_f32(r)
            regs[slot] = _dense_col(r, np.float64, len(lanes))

        return step_math1

    if arity == 2 and short in ("fmin", "fmax"):
        get_a, get_b = gets
        use_b = np.less if short == "fmin" else np.greater

        def step_math2(m, regs, lanes):
            a = np.asarray(get_a(regs), np.float64)
            b = np.asarray(get_b(regs), np.float64)
            # CPython min/max: return b only when strictly ordered before
            # a — reproduces the nan/tie asymmetry exactly.
            r = np.where(use_b(b, a), b, a)
            if f32:
                r = _finish_f32(r)
            regs[slot] = _dense_col(r, np.float64, len(lanes))

        return step_math2

    # Exact element-wise evaluation through the scalar table: identical
    # libm results, and domain errors become traps (-> scalar fallback
    # reproduces the exception).
    ufn = np.frompyfunc(fn, arity, 1)

    def step_mathn(m, regs, lanes):
        cols = [np.asarray(g(regs), np.float64) for g in gets]
        try:
            r = ufn(*cols).astype(np.float64)
        except Exception as exc:
            raise _Trap(f"math.{short}: {exc}") from None
        if f32:
            r = _finish_f32(r)
        regs[slot] = _dense_col(r, np.float64, len(lanes))

    return step_mathn


# -- function compilation -----------------------------------------------------


class _VUnit:
    __slots__ = (
        "uid_list",
        "name",
        "steps",
        "n_steps",
        "d_instr",
        "d_flops",
        "d_int_ops",
        "d_translations",
        "d_calls",
        "phi_plans",
        "kind",
        "true_index",
        "false_index",
        "cond",
        "branch_uid",
        "ret_get",
        "message",
        "use_slots",
        "def_slots",
        "phi_def_slots",
        "phi_src_by_pred",
        "merge_slots",
        "out_slots",
    )

    def __init__(self):
        self.uid_list = ()
        self.name = ""
        self.steps = ()
        self.n_steps = 0
        self.d_instr = 0
        self.d_flops = 0
        self.d_int_ops = 0
        self.d_translations = 0
        self.d_calls = 0
        self.phi_plans = None
        self.kind = -1
        self.true_index = 0
        self.false_index = 0
        self.cond = None
        self.branch_uid = 0
        self.ret_get = None
        self.message = "bad terminator"
        self.use_slots = set()
        self.def_slots = set()
        self.phi_def_slots = set()
        self.phi_src_by_pred = {}
        self.merge_slots = ()
        self.out_slots = ()


class VectorCodeCache:
    """Compiled :class:`VectorFunction` per IR function, with recursion
    detection via the in-progress set (a recursive cycle cannot be
    lane-synchronously scheduled, so it is gnarly)."""

    def __init__(self, region):
        # Only the SVM translation constant is baked into compiled steps;
        # everything else late-binds through the machine, so a cache can
        # be shared by every runtime whose region uses the same constant
        # (holding the region itself alive here would pin its buffers).
        self.svm_const = int(region.svm_const)
        self._cache: dict = {}
        self._building: set = set()

    def get(self, fn: Function) -> "VectorFunction":
        vfn = self._cache.get(fn)
        if vfn is not None:
            if vfn.__class__ is str:  # memoized gnarly reason
                raise _Gnarly(vfn)
            return vfn
        if fn in self._building:
            raise _Gnarly(f"recursion through {fn.name}")
        self._building.add(fn)
        try:
            vfn = VectorFunction(fn, self)
        except _Gnarly as exc:
            self._cache[fn] = str(exc)
            raise
        finally:
            self._building.discard(fn)
        self._cache[fn] = vfn
        return vfn


class VectorFunction:
    """One IR function lowered to columnar units over the *same*
    superblock plan as the threaded-code engine."""

    __slots__ = (
        "function",
        "name",
        "nregs",
        "arg_slots",
        "arg_doms",
        "units",
        "ret_dtype",
        "maskable",
        "subs",
        "d_instr_vec",
        "d_flops_vec",
        "d_int_ops_vec",
        "d_translations_vec",
        "d_calls_vec",
    )

    def __init__(self, function: Function, cache: VectorCodeCache):
        plan = plan_function(function)
        if plan is None:
            raise _Gnarly(f"{function.name} has no body")
        self.function = function
        self.name = function.name
        self.nregs = plan.nregs
        self.arg_slots = list(plan.arg_slots)
        self.arg_doms = [_dom(arg.type) for arg in function.args]
        self.ret_dtype = None
        self.subs: list = []
        slots = plan.slots

        # A gep whose single use is the address of one load/store can be
        # fused into that memop step: its slot is never read elsewhere,
        # so the gep step (and a register write) disappears.  The gep
        # still participates in the per-unit instruction/int-op deltas.
        ucount: dict = {}
        user: dict = {}
        for chain in plan.units:
            for block in chain:
                for instr in block.instructions:
                    for posn, opv in enumerate(instr.operands):
                        i = id(opv)
                        ucount[i] = ucount.get(i, 0) + 1
                        user[i] = (instr, posn)
        fuse_ok = set()
        for chain in plan.units:
            for block in chain:
                for instr in block.instructions:
                    if instr.op != "gep" or ucount.get(id(instr)) != 1:
                        continue
                    u, posn = user[id(instr)]
                    if (u.op == "load" and posn == 0) or (
                        u.op == "store" and posn == 1
                    ):
                        fuse_ok.add(id(instr))

        self.units = tuple(
            self._compile_unit(
                chain, slots, plan.unit_idx_by_block, cache, fuse_ok
            )
            for chain in plan.units
        )
        self._analyze_liveness()
        self.maskable = any(
            unit.kind == _T_CONDBR for unit in self.units
        ) or any(sub.maskable for sub in self.subs)
        self.d_instr_vec = np.array([u.d_instr for u in self.units], _I64)
        self.d_flops_vec = np.array([u.d_flops for u in self.units], _I64)
        self.d_int_ops_vec = np.array([u.d_int_ops for u in self.units], _I64)
        self.d_translations_vec = np.array(
            [u.d_translations for u in self.units], _I64
        )
        self.d_calls_vec = np.array([u.d_calls for u in self.units], _I64)

    # -- compilation ------------------------------------------------------

    def _compile_unit(self, chain, slots, unit_idx_by_block, cache, fuse_ok):
        unit = _VUnit()
        head = chain[0]
        unit.uid_list = tuple(block.uid for block in chain)
        unit.name = head.name
        unit.phi_plans = self._compile_phis(
            unit, head, head.phis(), slots, unit_idx_by_block
        )

        # geps (globally single-use, memop-addressed) defined in *this*
        # chain and consumed in this chain: those fuse.
        skip: dict = {}
        seen: set = set()
        for block in chain:
            for instr in block.instructions:
                op = instr.op
                if op == "gep" and id(instr) in fuse_ok:
                    seen.add(id(instr))
                elif op == "load":
                    a = instr.operands[0]
                    if id(a) in seen:
                        skip[id(a)] = a
                elif op == "store":
                    a = instr.operands[1]
                    if id(a) in seen:
                        skip[id(a)] = a

        use = unit.use_slots
        defs = unit.def_slots

        def mark_use(v):
            s = slots.get(id(v))
            if s is not None and s not in defs:
                use.add(s)

        steps: list = []
        terminator = None
        term_block = chain[-1]
        n_steps = 0
        last = len(chain) - 1
        for bi, block in enumerate(chain):
            phis = block.phis()
            if bi > 0 and phis:
                moves, error = self._phi_moves(block, phis, chain[bi - 1], slots)
                if error is not None:
                    steps.append(_error_step(error))
                else:
                    for _dst, _phi, value in moves:
                        mark_use(value)
                    for _dst, phi, _value in moves:
                        s = slots.get(id(phi))
                        if s is not None:
                            defs.add(s)
                    steps.append(self._compile_moves(moves, slots))
            n_nonphi = 0
            block_term = None
            for instr in block.instructions:
                op = instr.op
                if op == "phi":
                    continue
                n_nonphi += 1
                if op in ("br", "condbr", "ret", "unreachable"):
                    block_term = instr
                    break
                for opv in instr.operands:
                    mark_use(opv)
                _account(instr, unit)
                if op == "gep" and id(instr) in skip:
                    pass  # fused into its single consuming memop below
                elif op == "load" and id(instr.operands[0]) in skip:
                    gep = skip[id(instr.operands[0])]
                    steps.append(
                        _compile_load(instr, slots, _gep_addr(gep, slots))
                    )
                elif op == "store" and id(instr.operands[1]) in skip:
                    gep = skip[id(instr.operands[1])]
                    steps.append(
                        _compile_store(instr, slots, _gep_addr(gep, slots))
                    )
                else:
                    steps.append(self._compile_instr(instr, slots, cache))
                s = slots.get(id(instr))
                if s is not None:
                    defs.add(s)
            n_steps += n_nonphi
            unit.d_instr += len(phis) + n_nonphi
            if bi == last:
                terminator = block_term
                term_block = block
        unit.steps = tuple(steps)
        unit.n_steps = n_steps

        if terminator is None:
            unit.kind = -1
            unit.message = f"{self.name}: block {term_block.name} fell through"
        elif terminator.op == "br":
            unit.kind = _T_BR
            unit.true_index = unit_idx_by_block[terminator.targets[0]]
        elif terminator.op == "condbr":
            unit.kind = _T_CONDBR
            mark_use(terminator.operands[0])
            cd = _dom(terminator.operands[0].type)
            get = _get_dom(terminator.operands[0], slots, cd)
            zero = 0.0 if cd == "f" else 0

            def truth(regs, _g=get, _z=zero):
                return np.asarray(_g(regs)) != _z

            unit.cond = truth
            unit.true_index = unit_idx_by_block[terminator.targets[0]]
            unit.false_index = unit_idx_by_block[terminator.targets[1]]
            unit.branch_uid = terminator.uid
        elif terminator.op == "ret":
            unit.kind = _T_RET
            if terminator.operands:
                mark_use(terminator.operands[0])
                rd = _dom(terminator.operands[0].type)
                if rd == "v":
                    raise _Gnarly("void-typed return value")
                dt = _dtype_of(rd)
                if self.ret_dtype is None:
                    self.ret_dtype = dt
                elif self.ret_dtype != dt:
                    raise _Gnarly("mixed return domains")
                unit.ret_get = _get_dom(terminator.operands[0], slots, rd)
        else:
            unit.kind = -1
            unit.message = f"reached unreachable in {self.name}"
        return unit

    def _analyze_liveness(self):
        """Per-unit backward dataflow at slot granularity.  ``merge_slots``
        (= live-in after entry phis) is what segment merges concatenate;
        ``out_slots`` (= live-out, phi sources included on their edge) is
        what branch partitions subset.  Everything else in a frame is
        dead and never copied."""
        units = self.units
        nunits = len(units)
        live_in = [set() for _ in range(nunits)]
        live_out = [set() for _ in range(nunits)]
        changed = True
        while changed:
            changed = False
            for u in range(nunits - 1, -1, -1):
                unit = units[u]
                if unit.kind == _T_BR:
                    succs = (unit.true_index,)
                elif unit.kind == _T_CONDBR:
                    succs = (unit.true_index, unit.false_index)
                else:
                    succs = ()
                lo = set()
                for s in succs:
                    sunit = units[s]
                    lo |= live_in[s] - sunit.phi_def_slots
                    srcs = sunit.phi_src_by_pred.get(u)
                    if srcs:
                        lo |= srcs
                li = unit.use_slots | (lo - unit.def_slots)
                if lo != live_out[u]:
                    live_out[u] = lo
                    changed = True
                if li != live_in[u]:
                    live_in[u] = li
                    changed = True
        for u, unit in enumerate(units):
            unit.merge_slots = tuple(sorted(live_in[u]))
            unit.out_slots = tuple(sorted(live_out[u]))

    def _phi_moves(self, block, phis, pred, slots):
        moves = []
        for phi in phis:
            try:
                k = phi.phi_blocks.index(pred)
            except ValueError:
                return None, (
                    f"{self.name}: phi in {block.name} has no incoming "
                    f"edge from {pred.name}"
                )
            moves.append((slots[id(phi)], phi, phi.operands[k]))
        return moves, None

    def _compile_phis(self, unit, block, phis, slots, unit_idx_by_block):
        if not phis:
            return None
        plans: dict = {}
        for pred, unit_index in unit_idx_by_block.items():
            if block not in pred.successors():
                continue
            moves, error = self._phi_moves(block, phis, pred, slots)
            if error is not None:
                plans[unit_index] = error
            else:
                plans[unit_index] = self._compile_moves(moves, slots)
                srcs = unit.phi_src_by_pred.setdefault(unit_index, set())
                for _dst, _phi, value in moves:
                    s = slots.get(id(value))
                    if s is not None:
                        srcs.add(s)
        for phi in phis:
            s = slots.get(id(phi))
            if s is not None:
                unit.phi_def_slots.add(s)
        return plans

    def _compile_moves(self, moves, slots):
        gets = []
        dsts = []
        for dst, phi, value in moves:
            dom = _dom(phi.type)
            if dom == "v":
                raise _Gnarly("void phi")
            gets.append(_get_dom(value, slots, dom))
            dsts.append((dst, _dtype_of(dom)))

        def move(m, regs, lanes):
            k = len(lanes)
            values = [g(regs) for g in gets]
            for (dst, dt), value in zip(dsts, values):
                regs[dst] = _dense_col(value, dt, k)

        return move

    def _compile_instr(self, instr, slots, cache):
        op = instr.op
        if op == "load":
            return _compile_load(instr, slots)
        if op == "store":
            return _compile_store(instr, slots)
        if op == "gep":
            return _compile_gep(instr, slots)
        if op in ("icmp", "fcmp"):
            return _compile_compare(instr, slots)
        if op in _BINOP_EVAL:
            return _compile_binop(instr, slots)
        if op in _CAST_EVAL:
            return _compile_cast(instr, slots)
        if op == "select":
            return _compile_select(instr, slots)
        if op == "alloca":
            size = instr.alloc_type.size()
            slot = slots[id(instr)]

            def step_alloca(m, regs, lanes):
                regs[slot] = m.alloc_private(lanes, size)

            return step_alloca
        if op == "call":
            return self._compile_call(instr, slots, cache)
        if op == "vcall":
            raise _Gnarly("virtual call not devirtualized")
        raise _Gnarly(f"unhandled opcode {op}")

    def _compile_call(self, instr, slots, cache):
        callee = instr.callee
        slot = slots.get(id(instr))
        if isinstance(callee, Function):
            sub = cache.get(callee)
            self.subs.append(sub)
            pairs = []
            for value, arg in zip(instr.operands, callee.args):
                dom = _dom(arg.type)
                pairs.append((_get_dom(value, slots, dom), _dtype_of(dom)))
            rd = _dom(instr.type)
            if rd != "v":
                rdt = _dtype_of(rd)
                if sub.ret_dtype is not None and sub.ret_dtype != rdt:
                    raise _Gnarly("call/return domain mismatch")

            def step_call(m, regs, lanes):
                k = len(lanes)
                cols = [_dense_col(get(regs), dt, k) for get, dt in pairs]
                r = sub.invoke(m, cols, lanes)
                if rd != "v":
                    if r is None:
                        raise _Trap(f"{sub.name} returned no value")
                    regs[slot] = _dense_col(r, rdt, k)

            return step_call
        name = getattr(callee, "name", None)
        if name is None:
            raise _Gnarly("unknown callee")
        return self._compile_intrinsic(instr, name, slots, cache)

    def _compile_intrinsic(self, instr, name, slots, cache):
        slot = slots.get(id(instr))
        if name in ("svm.to_gpu", "svm.to_cpu"):
            svm_const = cache.svm_const
            delta = svm_const if name == "svm.to_gpu" else -svm_const
            dc = np.int64(_const_scalar(delta, "i"))
            get = _get_pat(instr.operands[0], slots)

            def step_translate(m, regs, lanes):
                a = get(regs)
                arr = a if isinstance(a, np.ndarray) else np.int64(a)
                au = _u64(arr)
                keep = ((au >= _PB_U) & (au < _PE_U)) | (au == _ZERO_U)
                regs[slot] = _dense_col(
                    np.where(keep, arr, arr + dc), _I64, len(lanes)
                )

            return step_translate
        if name in ("svm.malloc", "svm.free"):
            raise _Gnarly(f"device-side allocator call {name}")
        if name == "gpu.global_id":

            def step_gid(m, regs, lanes):
                regs[slot] = m.global_ids[lanes]

            return step_gid
        if name == "gpu.num_cores":

            def step_cores(m, regs, lanes):
                regs[slot] = np.full(len(lanes), m.num_cores, _I64)

            return step_cores
        if name == "gpu.barrier":

            def step_barrier(m, regs, lanes):
                pass

            return step_barrier
        if name.startswith("atomic."):
            raise _Gnarly(f"atomic intrinsic {name}")
        if name.startswith("math."):
            return _compile_math(instr, name, slots)
        raise _Gnarly(f"unknown intrinsic {name}")

    # -- execution --------------------------------------------------------

    def invoke(self, m: VectorMachine, args, lanes0):
        """Run all lanes of one invocation to completion with a worklist
        of dense segments: pop the lowest pending unit (deterministic
        reconvergence — a unit runs only once no lanes remain at lower
        units), merge the segments parked there over the unit's live-in
        slots, execute its steps on full dense columns, and partition
        the live-out columns at divergent branches."""
        if m.depth > _MAX_CALL_DEPTH:
            raise _Trap(f"call depth limit exceeded in {self.name}")
        m.depth += 1
        try:
            k0 = len(lanes0)
            regs0 = [None] * self.nregs
            for slot, col in zip(self.arg_slots, args):
                regs0[slot] = col
            hits, tks = m.counts_for(self)
            units = self.units
            nregs = self.nregs
            track = self.ret_dtype is not None
            pos0 = np.arange(k0, dtype=_I64) if track else None
            # unit index -> [(prev unit, regs, lanes, pos), ...]
            pending = {0: [(-1, regs0, lanes0, pos0)]}
            ret_cols: list = []
            ret_pos: list = []
            step_acc = m.step_acc
            max_steps = m.max_steps
            while pending:
                u = min(pending)
                segs = pending.pop(u)
                unit = units[u]
                plans = unit.phi_plans
                if plans is not None:
                    for p, rg, ln, _pp in segs:
                        plan = plans.get(p)
                        if plan is None:
                            raise _Trap(
                                f"{self.name}: phi in {unit.name} has no "
                                f"incoming edge"
                            )
                        if plan.__class__ is str:
                            raise _Trap(plan)
                        plan(m, rg, ln)
                if len(segs) == 1:
                    _prev, regs, lanes, pos = segs[0]
                else:
                    lanes = np.concatenate([s[2] for s in segs])
                    pos = (
                        np.concatenate([s[3] for s in segs]) if track else None
                    )
                    cols = [s[1] for s in segs]
                    regs = [None] * nregs
                    for slot in unit.merge_slots:
                        regs[slot] = np.concatenate([c[slot] for c in cols])
                k = len(lanes)
                m.occ_active += k
                m.occ_slots += k0
                hits[u].append(lanes)
                ns = unit.n_steps
                if ns:
                    step_acc.append((lanes, ns))
                    m.step_hi += ns
                    if m.step_hi > max_steps:
                        m.settle_steps(max_steps, self.name)
                for step in unit.steps:
                    step(m, regs, lanes)
                kind = unit.kind
                if kind == _T_BR:
                    pending.setdefault(unit.true_index, []).append(
                        (u, regs, lanes, pos)
                    )
                elif kind == _T_CONDBR:
                    t = unit.cond(regs)
                    if t.shape != lanes.shape:
                        t = np.full(k, bool(t))
                    nt_count = int(np.count_nonzero(t))
                    if nt_count == k:
                        tks[u].append(lanes)
                        pending.setdefault(unit.true_index, []).append(
                            (u, regs, lanes, pos)
                        )
                    elif nt_count == 0:
                        pending.setdefault(unit.false_index, []).append(
                            (u, regs, lanes, pos)
                        )
                    else:
                        nt = ~t
                        tlanes = lanes[t]
                        tks[u].append(tlanes)
                        tregs = [None] * nregs
                        fregs = [None] * nregs
                        for slot in unit.out_slots:
                            col = regs[slot]
                            tregs[slot] = col[t]
                            fregs[slot] = col[nt]
                        pending.setdefault(unit.true_index, []).append(
                            (u, tregs, tlanes, pos[t] if track else None)
                        )
                        pending.setdefault(unit.false_index, []).append(
                            (u, fregs, lanes[nt], pos[nt] if track else None)
                        )
                elif kind == _T_RET:
                    get = unit.ret_get
                    if get is not None:
                        ret_cols.append(
                            _dense_col(get(regs), self.ret_dtype, k)
                        )
                        ret_pos.append(pos)
                else:
                    raise _Trap(unit.message)
            if not ret_cols:
                return None
            out = np.zeros(k0, self.ret_dtype)
            for col, p in zip(ret_cols, ret_pos):
                out[p] = col
            return out
        finally:
            m.depth -= 1


# -- launch entry points ------------------------------------------------------


def classify_kernel(cache: VectorCodeCache, fn: Function):
    """(status, reason, vfn): status is "regular" (no divergence
    anywhere), "maskable" (vectorized with per-lane masks), or "gnarly"
    (permanently routed to the scalar engine)."""
    try:
        vfn = cache.get(fn)
    except _Gnarly as exc:
        return "gnarly", str(exc), None
    return ("maskable" if vfn.maskable else "regular"), "", vfn


def _arg_columns(vfn: VectorFunction, span, args_of):
    rows = [args_of(index) for index in span]
    cols = []
    for j, dom in enumerate(vfn.arg_doms):
        if dom == "f":
            cols.append(np.array([float(row[j]) for row in rows], np.float64))
        else:
            cols.append(
                np.fromiter(
                    (_const_scalar(int(row[j]), "i") for row in rows),
                    _I64,
                    len(rows),
                )
            )
    return cols


def run_vectorized(rt, vfn: VectorFunction, span, args_of, num_cores, budget):
    """Execute one GPU launch columnar; returns (machine, traces).

    On *any* failure — vectorizability trap, cross-lane hazard, or an
    unexpected error — every journalled store is rolled back so the
    region is byte-identical to its pre-launch state, and
    :class:`VectorFallback` tells the backend to rerun the span through
    the scalar engine (which then reproduces results, traces, and error
    behaviour exactly)."""
    machine = VectorMachine(rt, span, num_cores)
    try:
        cols = _arg_columns(vfn, span, args_of)
        with np.errstate(all="ignore"):
            vfn.invoke(machine, cols, machine.lane_ids)
            machine.check_hazards()
        traces = machine.materialize(budget)
    except _Trap as exc:
        machine.rollback()
        raise VectorFallback(str(exc), sticky=exc.sticky) from None
    except Exception as exc:  # journal safety net: never corrupt memory
        machine.rollback()
        raise VectorFallback(f"{type(exc).__name__}: {exc}") from None
    machine.journal.clear()
    return machine, traces
