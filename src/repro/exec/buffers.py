"""Compact runtime buffers shared by the two execution engines.

Two pieces of infrastructure that keep the hot execution paths cheap:

* :class:`MemEventColumns` — a columnar memory-event buffer (parallel
  ``array`` columns of ints rather than one ``MemEvent`` object per dynamic
  access).  The threaded-code engine appends five ints per access instead
  of allocating an object; the timing models consume either representation
  through :func:`iter_mem_events` (or plain iteration, which adapts each
  row back into a ``MemEvent``).

* :class:`PrivateMemoryPool` — recycles the per-invocation private-memory
  (``alloca``) bytearray.  A fresh buffer is ~1 MiB of zeroed memory per
  work-item; the pool hands the same buffer back out after re-zeroing only
  the dirty prefix actually written by stores, which is what makes
  million-launch sweeps cheap.

``DEFAULT_MEM_EVENT_CAP`` is the single authoritative default for how many
memory events a trace retains; :class:`~repro.exec.interp.ExecTrace` and
:class:`~repro.runtime.runtime.ConcordRuntime` both derive from it so the
cap the runtime is built with is exactly the cap the traces enforce.
"""

from __future__ import annotations

from array import array

#: One cap, threaded from the runtime into every trace it creates.  The
#: cache/coalescing models sample at most this many events per launch;
#: events beyond it are counted in ``mem_events_dropped``.
DEFAULT_MEM_EVENT_CAP = 120_000


class MemEventColumns:
    """Columnar storage for dynamic memory-access events.

    One interleaved unsigned-64 array holds ``(instr_uid, seq, address,
    size, is_store)`` rows with stride 5, so the hot path appends a whole
    event with a single ``extend`` call.  Every field is non-negative by
    construction (uids and seqs are counters, addresses and sizes are
    masked to 64 bits).  Iteration yields ``MemEvent`` objects so existing
    consumers work unchanged; hot consumers should use
    :func:`iter_mem_events` to stream tuples without materializing objects.
    """

    __slots__ = ("data",)

    STRIDE = 5

    def __init__(self):
        self.data = array("Q")

    def append_raw(
        self, instr_uid: int, seq: int, address: int, size: int, is_store: bool
    ) -> None:
        self.data.extend((instr_uid, seq, address, size, 1 if is_store else 0))

    def append(self, event) -> None:
        """Object-style append, so code written against the list
        representation (``ExecTrace.record_mem``/``merge``) works on
        columns too."""
        self.append_raw(
            event.instr_uid, event.seq, event.address, event.size, event.is_store
        )

    @property
    def instr_uids(self):
        return self.data[0::5]

    @property
    def seqs(self):
        return self.data[1::5]

    @property
    def addresses(self):
        return self.data[2::5]

    @property
    def sizes(self):
        return self.data[3::5]

    @property
    def stores(self):
        return self.data[4::5]

    def __len__(self) -> int:
        return len(self.data) // 5

    def __iter__(self):
        from .interp import MemEvent

        data = self.data
        for i in range(0, len(data), 5):
            yield MemEvent(
                data[i], data[i + 1], data[i + 2], data[i + 3], bool(data[i + 4])
            )


def iter_mem_events(trace):
    """Stream a trace's memory events as ``(instr_uid, seq, address, size)``
    tuples, whichever representation the trace holds.

    The timing models only need these four fields; streaming tuples avoids
    building a ``MemEvent`` per row when the storage is columnar.
    """
    events = trace.mem_events
    if isinstance(events, MemEventColumns):
        data = events.data
        return zip(data[0::5], data[1::5], data[2::5], data[3::5])
    return ((e.instr_uid, e.seq, e.address, e.size) for e in events)


class PrivateMemoryPool:
    """Recycles zeroed private-memory buffers across kernel launches.

    ``acquire`` returns an all-zero buffer (freshly allocated or recycled);
    ``release`` takes the buffer back together with the caller's dirty
    high-water mark and re-zeroes only that prefix.  Kernels whose allocas
    were all promoted by ``mem2reg`` never touch the pool at all.
    """

    __slots__ = ("size", "_free", "counters")

    def __init__(self, size: int, counters=None):
        self.size = size
        self._free: list[bytearray] = []
        # Optional repro.obs.CounterRegistry; publishes
        # private_pool.reuse / private_pool.alloc when attached.
        self.counters = counters

    def acquire(self) -> bytearray:
        if self._free:
            if self.counters is not None:
                self.counters.add("private_pool.reuse")
            return self._free.pop()
        if self.counters is not None:
            self.counters.add("private_pool.alloc")
        return bytearray(self.size)

    def release(self, buffer: bytearray, dirty: int = 0) -> None:
        if buffer is None or len(buffer) != self.size:
            return
        if dirty > 0:
            dirty = min(dirty, self.size)
            buffer[:dirty] = bytes(dirty)
        self._free.append(buffer)
