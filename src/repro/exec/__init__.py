"""Scalar IR execution engines shared by the CPU/GPU simulators and host.

Two interchangeable backends execute the same IR over the same shared
region:

* :class:`Interpreter` — the reference backend: a direct tree walk over
  the IR object graph, easy to audit, used as the oracle in equivalence
  tests (``ConcordRuntime(engine="reference")``).
* :class:`CompiledEngine` — the threaded-code backend (default): each
  function is lowered once by :class:`CodeCache` into specialized Python
  closures and every launch replays the compiled form.  See
  :mod:`repro.exec.compiled` and ``docs/ENGINE.md``.

A third, batch-oriented engine executes every lane of a GPU chunk at
once instead of lane-at-a-time:

* :class:`VectorFunction` / :class:`VectorCodeCache` — columnar NumPy
  lowering with mask-based divergence (``ConcordRuntime(engine="vector")``
  selects the :class:`repro.backend.vector.VectorBackend` that drives
  it).  See :mod:`repro.exec.vector` and ``docs/VECTOR.md``.
"""

from .buffers import (
    DEFAULT_MEM_EVENT_CAP,
    MemEventColumns,
    PrivateMemoryPool,
    iter_mem_events,
)
from .compiled import CodeCache, CompiledEngine, CompiledFunction
from .interp import (
    AddressSpace,
    ExecTrace,
    ExecutionError,
    Interpreter,
    MemEvent,
)
from .vector import (
    VectorCodeCache,
    VectorFallback,
    VectorFunction,
    classify_kernel,
    run_vectorized,
)

__all__ = [
    "AddressSpace",
    "CodeCache",
    "CompiledEngine",
    "CompiledFunction",
    "DEFAULT_MEM_EVENT_CAP",
    "ExecTrace",
    "ExecutionError",
    "Interpreter",
    "MemEvent",
    "MemEventColumns",
    "PrivateMemoryPool",
    "VectorCodeCache",
    "VectorFallback",
    "VectorFunction",
    "classify_kernel",
    "iter_mem_events",
    "run_vectorized",
]
