"""Scalar IR execution engine shared by the CPU/GPU simulators and host."""

from .interp import (
    AddressSpace,
    ExecTrace,
    ExecutionError,
    Interpreter,
    MemEvent,
)

__all__ = [
    "AddressSpace",
    "ExecTrace",
    "ExecutionError",
    "Interpreter",
    "MemEvent",
]
