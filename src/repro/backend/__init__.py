"""Pluggable device backends for the Concord runtime.

A :class:`Backend` encapsulates everything device-specific about running
one parallel construct: engine/trace setup, the per-device timing model,
JIT caching (GPU) and the observer bookkeeping.  :class:`CpuBackend` and
:class:`GpuBackend` absorb what used to be ``ConcordRuntime``'s four
near-duplicate launch paths; the :mod:`repro.sched` scheduler composes
their chunk-level primitives (``launch`` / ``reduce``) into hybrid
co-execution.  See ``docs/RUNTIME.md``.

:class:`VectorBackend` subclasses :class:`GpuBackend`, swapping the
lane-at-a-time engine for the columnar NumPy engine in
:mod:`repro.exec.vector` (``ConcordRuntime(engine="vector")``); see
``docs/VECTOR.md``.
"""

from .base import Backend, LaunchResult
from .cpu import CpuBackend
from .gpu import GpuBackend
from .vector import VectorBackend

__all__ = ["Backend", "LaunchResult", "CpuBackend", "GpuBackend", "VectorBackend"]
