"""Integrated-GPU backend (offload through the paper's runtime API).

Owns the ``gpu_function_t`` JIT cache (keyed ``(program_id,
kernel_name)`` — kernel names repeat across compiled programs), the
per-lane trace collection with its global mem-event cap budget, and the
section 3.3 hierarchical reduction (private copies → per-work-group tree
join → sequential host join).  The construct-level paths reproduce the
pre-refactor ``_offload`` / ``_offload_reduce`` byte for byte; the
chunk-level ``launch`` / ``reduce`` / ``alloc_copies`` / ``join_copies``
pieces are what the hybrid scheduler composes.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Optional

from ..cpu.timing import time_cpu_execution
from ..gpu.timing import time_gpu_kernel
from ..svm import address_of
from .base import Backend, LaunchResult


def _runtime_mod():
    # Deferred: repro.runtime.runtime imports this package.  Constants
    # (JIT_SECONDS_PER_INSTRUCTION, REDUCTION_GROUP_SIZE) are read through
    # the module at call time so tests can monkeypatch them where they
    # always lived.
    from ..runtime import runtime

    return runtime


@dataclass
class GpuFunctionCache:
    """gpu_function_t: cached per-kernel JIT result (section 3.4)."""

    finalized: bool = False
    jit_seconds: float = 0.0
    launches: int = 0


@dataclass
class JoinResult:
    """What the post-launch reduction join produced (see
    :meth:`GpuBackend.join_copies`)."""

    joined: bool = False
    local_cycles: float = 0.0
    local_seconds: float = 0.0
    host_fn: object = None
    host_trace: object = None
    tree_span: object = None
    host_span: object = None


class GpuBackend(Backend):
    name = "gpu"
    capabilities = frozenset({"for", "reduce", "jit"})

    def _counters(self):
        obs = self.rt.obs
        return obs.counters if obs is not None else None

    # -- chunk-level primitives -------------------------------------------

    def prepare(self, kinfo) -> float:
        """One-time OpenCL -> GPU ISA JIT per kernel (gpu_function_t cache)."""
        rt = self.rt
        key = (rt.program.program_id, kinfo.gpu_kernel.name)
        cache = rt._gpu_function_cache.setdefault(key, GpuFunctionCache())
        cache.launches += 1
        if cache.finalized:
            return 0.0
        instructions = sum(
            len(block.instructions) for block in kinfo.gpu_kernel.blocks
        )
        cache.jit_seconds = (
            instructions * _runtime_mod().JIT_SECONDS_PER_INSTRUCTION
        )
        cache.finalized = True
        return cache.jit_seconds

    def jit_preview(self, kinfo) -> float:
        """The JIT cost :meth:`prepare` *would* charge for this kernel,
        without finalizing the cache entry — the task graph's compile-ahead
        lane prices queued compilations with it at submission time."""
        rt = self.rt
        key = (rt.program.program_id, kinfo.gpu_kernel.name)
        cache = rt._gpu_function_cache.get(key)
        if cache is not None and cache.finalized:
            return 0.0
        instructions = sum(
            len(block.instructions) for block in kinfo.gpu_kernel.blocks
        )
        return instructions * _runtime_mod().JIT_SECONDS_PER_INSTRUCTION

    def _gpu_traces(self, kernel, span: range, args_of, budget=None) -> list:
        traces = []
        rt = self.rt
        # Per-work-item cap with a *global* budget: the per-item floor of
        # 1000 events keeps short lanes representative, but once the
        # work-items collectively reach the budget the remaining lanes
        # record nothing — without the running ``kept`` total, n
        # floor-capped lanes would retain up to n * 1000 events, blowing
        # the budget by orders of magnitude for large n.  Overflow is
        # visible: each trace counts its drops in ``mem_events_dropped``.
        if budget is None:
            budget = rt.mem_event_cap
        per_item = max(1000, budget // max(1, len(span)))
        kept = 0
        allocator = (
            rt.device_heap() if rt.program.config.device_alloc else None
        )
        for index in span:
            cap = min(per_item, max(0, budget - kept))
            trace = rt._new_trace(cap)
            interp = rt._make_engine(
                device="gpu",
                trace=trace,
                global_id=index,
                num_cores=rt.system.gpu.num_eus,
                allocator=allocator,
            )
            try:
                interp.call_function(kernel, args_of(index))
            except BaseException as exc:
                # Cold path: lane context for the flight recorder.
                if not hasattr(exc, "trap_device"):
                    exc.trap_device = self.name
                    exc.trap_kernel = kernel.name
                    exc.trap_global_id = index
                raise
            interp.release_private_memory()
            kept += len(trace.mem_events)
            traces.append(trace)
        if rt.keep_traces:
            rt.trace_log.extend(traces)
        return traces

    def launch(
        self,
        kinfo,
        span: range,
        body_addr: int,
        timing_cache=None,
        budget: Optional[int] = None,
    ) -> LaunchResult:
        # The kernel receives the body pointer in CPU representation (the
        # paper's ``CpuPtr cpu_ptr`` argument) and translates it itself.
        traces = self._gpu_traces(
            kinfo.gpu_kernel, span, lambda index: [body_addr, index], budget
        )
        report = time_gpu_kernel(
            self.rt.system.gpu,
            kinfo.gpu_kernel,
            traces,
            l3=timing_cache,
            counters=self._counters(),
        )
        return LaunchResult(report=report, traces=traces)

    def reduce(
        self,
        kinfo,
        span: range,
        copies: list,
        timing_cache=None,
        budget: Optional[int] = None,
    ) -> LaunchResult:
        traces = self._gpu_traces(
            kinfo.gpu_kernel,
            span,
            lambda index: [copies[index], index],
            budget,
        )
        report = time_gpu_kernel(
            self.rt.system.gpu,
            kinfo.gpu_kernel,
            traces,
            l3=timing_cache,
            counters=self._counters(),
        )
        return LaunchResult(report=report, traces=traces)

    # -- reduction scratch management (shared with the hybrid scheduler) --

    def alloc_copies(self, kinfo, body_addr: int, n: int) -> list:
        """One private body copy per work-item, initialized from the body
        payload.  The copies live in the shared region for the simulation;
        on hardware they sit in private/local memory, so their accesses
        are excluded from the global-memory trace via fresh offsets."""
        rt = self.rt
        struct = kinfo.body_class.struct_type
        size = struct.size()
        payload = rt.region.read_bytes(body_addr, size)
        copies = [rt.allocator.malloc(size, struct.align()) for _ in range(n)]
        for copy_addr in copies:
            rt.region.write_bytes(copy_addr, payload)
        return copies

    def free_copies(self, copies: list) -> None:
        for copy_addr in copies:
            self.rt.allocator.free(copy_addr)

    def join_copies(self, kinfo, body_addr: int, copies: list) -> JoinResult:
        """Tree reduction within each work-group (local memory: charge a
        small per-level cost rather than global traffic), then the
        sequential host join of group leaders.  The GPU join form falls
        back to the host join when SVM lowering was skipped; when
        *neither* form exists, combining the private copies is impossible
        — warn and leave the body unreduced instead of crashing
        mid-construct (section 3.3's sequential fallback contract:
        degrade, don't die).  Must run inside the caller's construct
        span; the returned spans carry the phase timings."""
        rt = self.rt
        n = len(copies)
        group = _runtime_mod().REDUCTION_GROUP_SIZE
        num_groups = (n + group - 1) // group
        join_fn = getattr(kinfo, "gpu_join_kernel", None) or kinfo.join_kernel
        if join_fn is None:
            warnings.warn(
                f"reduce body {kinfo.body_class.name} has no join "
                "kernel on any device; group results were left "
                "uncombined (sequential host-join fallback unavailable)",
                _runtime_mod().ConcordWarning,
                stacklevel=3,
            )
            return JoinResult()
        result = JoinResult(joined=True)
        with rt._span("reduce_tree", "phase", groups=num_groups) as tree_span:
            join_interp = rt._make_engine(
                device="gpu" if join_fn.attributes.get("svm_lowered") else "cpu",
                collect_mem_events=False,
            )
            for group_index in range(num_groups):
                base = group_index * group
                members = copies[base : base + group]
                stride = 1
                while stride < len(members):
                    for offset in range(0, len(members) - stride, stride * 2):
                        into = members[offset]
                        source = members[offset + stride]
                        join_interp.call_function(join_fn, [into, source])
                    stride *= 2
            join_interp.release_private_memory()
        result.tree_span = tree_span
        # local-memory reduction cost: log2(group) levels of cheap traffic
        levels = max(1, int(math.ceil(math.log2(group))))
        result.local_cycles = num_groups * levels * 8.0 / rt.system.gpu.num_eus
        result.local_seconds = result.local_cycles / rt.system.gpu.frequency_hz

        # Sequential join of group leaders on the host (original join; the
        # device form is a last-resort stand-in).  The host join's
        # simulated cost is only measured for the profile —
        # ExecutionReport keeps its historical meaning (device time + JIT).
        result.host_fn = kinfo.join_kernel or join_fn
        if rt.obs is not None:
            result.host_trace = rt._new_trace()
        with rt._span("host_join", "phase") as host_span:
            host = rt._host_interpreter(trace=result.host_trace)
            for group_index in range(num_groups):
                leader = copies[group_index * group]
                host.call_function(result.host_fn, [body_addr, leader])
            host.release_private_memory()
        result.host_span = host_span
        return result

    # -- construct-level entry points -------------------------------------

    def run_for(self, kinfo, n: int, body):
        rt = self.rt
        kernel_name = kinfo.gpu_kernel.name
        with rt._span(
            f"construct:{kernel_name}", "construct", device="gpu", n=n
        ) as cspan:
            with rt._span("jit", "phase") as jit_span:
                jit_seconds = self.prepare(kinfo)
            addr = address_of(body)
            with rt._span("launch", "phase") as launch_span:
                result = self.launch(kinfo, range(n), addr)
        report = result.report
        rt.total_gpu_report += report
        if rt.obs is not None:
            rt._record_construct(
                cspan,
                kernel_name,
                "for",
                "gpu",
                n,
                seconds=report.seconds + jit_seconds,
                energy_joules=report.energy_joules,
                phases={"jit": jit_seconds, "launch": report.seconds},
                traces=result.traces,
                span_seconds=[
                    (jit_span, jit_seconds),
                    (launch_span, report.seconds),
                ],
                line_samples=[(kinfo.gpu_kernel, "gpu", result.traces)],
            )
        return _runtime_mod().ExecutionReport(
            device="gpu", n=n, report=report, jit_seconds=jit_seconds
        )

    def run_reduce(self, kinfo, n: int, body):
        """Hierarchical reduction (section 3.3): private body copies, local
        memory tree reduction per work-group, sequential join of group
        results."""
        rt = self.rt
        kernel_name = kinfo.gpu_kernel.name
        with rt._span(
            f"construct:{kernel_name}", "construct", device="gpu", n=n
        ) as cspan:
            with rt._span("jit", "phase") as jit_span:
                jit_seconds = self.prepare(kinfo)
            addr = address_of(body)
            copies = self.alloc_copies(kinfo, addr, n)
            with rt._span("launch", "phase") as launch_span:
                result = self.reduce(kinfo, range(n), copies)
            report = result.report
            launch_seconds = report.seconds
            join = self.join_copies(kinfo, addr, copies)
            if join.joined:
                report.cycles += join.local_cycles
                report.seconds += join.local_seconds
            self.free_copies(copies)

        rt.total_gpu_report += report
        if rt.obs is not None:
            host_join_seconds = 0.0
            if join.host_trace is not None:
                host_join_seconds = time_cpu_execution(
                    rt.system.cpu, [join.host_trace]
                ).seconds
            total_seconds = report.seconds + jit_seconds + host_join_seconds
            traces = result.traces + (
                [join.host_trace] if join.host_trace is not None else []
            )
            line_samples = [(kinfo.gpu_kernel, "gpu", result.traces)]
            if join.host_trace is not None:
                line_samples.append((join.host_fn, "cpu", [join.host_trace]))
            rt._record_construct(
                cspan,
                kernel_name,
                "reduce",
                "gpu",
                n,
                seconds=total_seconds,
                energy_joules=report.energy_joules,
                phases={
                    "jit": jit_seconds,
                    "launch": launch_seconds,
                    "reduce_tree": join.local_seconds,
                    "host_join": host_join_seconds,
                },
                traces=traces,
                span_seconds=[
                    (jit_span, jit_seconds),
                    (launch_span, launch_seconds),
                    (join.tree_span, join.local_seconds),
                    (join.host_span, host_join_seconds),
                ],
                line_samples=line_samples,
            )
        return _runtime_mod().ExecutionReport(
            device="gpu", n=n, report=report, jit_seconds=jit_seconds
        )
