"""The vectorized GPU backend: columnar NumPy execution per chunk.

``VectorBackend`` is a drop-in replacement for :class:`GpuBackend` that
executes every lane of a chunk at once through ``repro.exec.vector``
(one ndarray column per virtual register, mask-based divergence) instead
of running one threaded-code closure chain per work-item.  Everything
outside lane execution — JIT cache, timing, spans, reduction scratch,
observer bookkeeping — is inherited unchanged, because the timing models
are a pure function of the traces and the vector machine materializes
traces bit-identical to the scalar engine's.

Per-kernel decision flow (auditable via the ``vector.*`` counters and
the ``vector_classify`` span):

* first launch classifies the kernel (``regular`` / ``maskable`` /
  ``gnarly``); gnarly kernels — irreducible or unsupported constructs,
  un-devirtualized virtual calls, recursion, device-side allocation —
  permanently fall back to the scalar :class:`CompiledEngine` path;
* vectorizable kernels run optimistically; a runtime trap (semantics the
  columnar lowering cannot reproduce for *these* inputs) rolls back every
  store and re-runs the chunk on the scalar path, so results never
  diverge; sticky traps (cross-lane hazards) disable the kernel for the
  rest of the runtime.
"""

from __future__ import annotations

from typing import Optional

from .gpu import GpuBackend

# Process-wide state shared by every VectorBackend instance.  Compiled
# VectorFunctions depend only on the IR (which ``Workload.compile``
# caches per process) and the region's SVM translation constant, so the
# compile cost is paid once per program, not once per runtime.  The
# scalar memo remembers kernels the optimistic path gave up on — a
# cross-lane hazard or an occupancy too low for columnar execution to
# win — so later runtimes skip the doomed vector attempt entirely
# (either path yields bit-identical traces; this is purely a heuristic).
#
# All three are keyed by the program's content-hash ``program_id``
# (``repro.runtime.compiler``): two different programs can never alias an
# entry (the old shape-based key collided for same-named kernels with
# equal block/instruction counts), while recompiles of the same
# (source, options) pair — including warm loads from the artifact store —
# share the memos, exactly as intended.
_SHARED_CACHES: dict = {}  # (program_id, svm_const) -> VectorCodeCache
_SCALAR_KERNELS: dict = {}  # (program_id, kernel name) -> reason string
_GNARLY_KERNELS: dict = {}  # (program_id, kernel name) -> gnarly reason


def _memo_key(program_id, kernel):
    """Stable across recompiles *and* processes for the same
    (source, options) pair — ``program_id`` is a content hash — while
    distinguishing same-named kernels from different programs (fuzz
    generators reuse class names)."""
    return (program_id, kernel.name)


def clear_memos() -> None:
    """Drop the process-wide classification/fallback memos (test support:
    differential oracles clear them so every run exercises the optimistic
    vector path from scratch)."""
    _SCALAR_KERNELS.clear()
    _GNARLY_KERNELS.clear()


def reset_process_caches() -> None:
    """Reset *every* process-wide vector-engine cache, not just the
    classification memos: ``_SHARED_CACHES`` keeps compiled columnar
    kernels keyed by svm_const, which :func:`clear_memos` never touched —
    an oracle run could therefore replay a kernel compiled under an
    earlier iteration's region layout.  Fuzz oracles call this between
    runs so each one starts from a genuinely cold process state."""
    clear_memos()
    _SHARED_CACHES.clear()

# Below this active-lane-slot ratio the dense segments are so small that
# per-ufunc overhead beats the scalar engine; measured once on the first
# vector launch of a kernel, then routed scalar for the process.
_MIN_OCCUPANCY = 0.12


class VectorBackend(GpuBackend):
    """GPU backend that executes chunks through the columnar engine."""

    name = "vector"
    capabilities = frozenset({"for", "reduce", "jit"})

    def __init__(self, rt):
        super().__init__(rt)
        # kernel name -> ("gnarly", reason, None) | (kind, "", VectorFunction)
        self._status: dict = {}
        self._sticky: set = set()

    # -- classification ----------------------------------------------------

    def _vector_cache(self):
        from ..exec.vector import VectorCodeCache

        key = (self.rt.program.program_id, int(self.rt.region.svm_const))
        cache = _SHARED_CACHES.get(key)
        if cache is None:
            cache = _SHARED_CACHES[key] = VectorCodeCache(self.rt.region)
        return cache

    def _classify(self, kernel):
        got = self._status.get(kernel.name)
        if got is not None:
            return got
        memo = _memo_key(self.rt.program.program_id, kernel)
        reason = _GNARLY_KERNELS.get(memo)
        if reason is not None:
            got = ("gnarly", reason, None)
        else:
            from ..exec.vector import classify_kernel

            with self.rt._span(
                "vector_classify", "vector", kernel=kernel.name
            ):
                got = classify_kernel(self._vector_cache(), kernel)
            if got[0] == "gnarly":
                _GNARLY_KERNELS[memo] = got[1]
        self._status[kernel.name] = got
        counters = self._counters()
        if counters is not None:
            if got[0] == "gnarly":
                counters.add("vector.kernels_gnarly")
            else:
                counters.add("vector.kernels_vectorized")
        return got

    # -- lane execution ----------------------------------------------------

    def _gpu_traces(self, kernel, span: range, args_of, budget=None) -> list:
        rt = self.rt
        if len(span) == 0:
            return super()._gpu_traces(kernel, span, args_of, budget)
        counters = self._counters()
        memo = _memo_key(rt.program.program_id, kernel)
        if kernel.name in self._sticky or memo in _SCALAR_KERNELS:
            # A past launch hit a cross-lane hazard or ran at an
            # occupancy where columnar execution loses; skip even the
            # classification compile and go straight to the scalar path.
            if counters is not None:
                counters.add("vector.fallbacks")
            return super()._gpu_traces(kernel, span, args_of, budget)
        kind, _reason, vfn = self._classify(kernel)
        if kind == "gnarly":
            if counters is not None:
                counters.add("vector.fallbacks")
            return super()._gpu_traces(kernel, span, args_of, budget)

        from ..exec.vector import VectorFallback, run_vectorized

        # Mirror the scalar path's lazy device-heap reservation *before*
        # executing, so region layout is identical whichever path runs
        # (the scalar fallback would otherwise reserve it mid-construct).
        if rt.program.config.device_alloc:
            rt.device_heap()
        try:
            with rt._span(
                "vector_launch", "vector", kernel=kernel.name, n=len(span)
            ):
                machine, traces = run_vectorized(
                    rt,
                    vfn,
                    span,
                    args_of,
                    num_cores=rt.system.gpu.num_eus,
                    budget=rt.mem_event_cap if budget is None else budget,
                )
        except VectorFallback as fb:
            if fb.sticky:
                self._sticky.add(kernel.name)
                _SCALAR_KERNELS[memo] = str(fb)
            if counters is not None:
                counters.add("vector.fallbacks")
            return super()._gpu_traces(kernel, span, args_of, budget)

        n = len(span)
        if (
            machine.occ_slots
            and machine.occ_active / machine.occ_slots < _MIN_OCCUPANCY
        ):
            # This launch already ran (and its results stand), but the
            # mask occupancy says columnar execution loses to the scalar
            # engine here — route future launches of this kernel scalar.
            _SCALAR_KERNELS[memo] = "low mask occupancy"
        if counters is not None:
            # The scalar engines bump engine.invocations once per
            # call_function; one vector launch is n of those.
            counters.add("engine.invocations", n)
            counters.add("engine.invocations.gpu", n)
            counters.add("vector.lanes_retired", n)
            # Occupancy ratio = vector.mask_occupancy / vector.mask_slots:
            # active lane-steps over issued lane-slots across all units.
            counters.add("vector.mask_occupancy", int(machine.occ_active))
            counters.add("vector.mask_slots", int(machine.occ_slots))
        if rt.keep_traces:
            rt.trace_log.extend(traces)
        return traces
