"""Multicore-CPU backend (the paper's ``on_cpu=True`` path).

All iterations of a chunk run through one engine and one trace — the
timing model's multicore scaling (``cores × parallel_efficiency``)
represents TBB-style work distribution, so per-lane traces would model
nothing extra.  The construct-level paths reproduce the pre-refactor
``_run_cpu`` / ``_run_cpu_reduce`` byte for byte.
"""

from __future__ import annotations

from typing import Optional

from ..cpu.timing import time_cpu_execution
from ..svm import address_of
from .base import Backend, LaunchResult


def _runtime_mod():
    # Deferred: repro.runtime.runtime imports this package.  Constants
    # (REDUCTION_GROUP_SIZE etc.) are read through the module at call time
    # so tests can monkeypatch them where they always lived.
    from ..runtime import runtime

    return runtime


class CpuBackend(Backend):
    name = "cpu"
    capabilities = frozenset({"for", "reduce"})

    def _counters(self):
        obs = self.rt.obs
        return obs.counters if obs is not None else None

    # -- chunk-level primitives -------------------------------------------

    def prepare(self, kinfo) -> float:
        return 0.0  # host code is already compiled; nothing to JIT

    def launch(
        self,
        kinfo,
        span: range,
        body_addr: int,
        timing_cache=None,
        budget: Optional[int] = None,
    ) -> LaunchResult:
        rt = self.rt
        trace = rt._new_trace(budget)
        interp = rt._make_engine(
            device="cpu",
            trace=trace,
            num_cores=rt.system.cpu.cores,
            allocator=rt.allocator,
        )
        kernel = kinfo.kernel
        for index in span:
            interp.global_id = index
            try:
                interp.call_function(kernel, [body_addr, index])
            except BaseException as exc:
                # Cold path: lane context for the flight recorder.
                if not hasattr(exc, "trap_device"):
                    exc.trap_device = self.name
                    exc.trap_kernel = kernel.name
                    exc.trap_global_id = index
                raise
        interp.release_private_memory()
        if rt.keep_traces:
            rt.trace_log.append(trace)
        report = time_cpu_execution(
            rt.system.cpu, [trace], llc=timing_cache, counters=self._counters()
        )
        return LaunchResult(report=report, traces=[trace])

    def reduce(
        self,
        kinfo,
        span: range,
        copies: list,
        timing_cache=None,
        budget: Optional[int] = None,
    ) -> LaunchResult:
        """Reduction lanes in the GPU's one-copy-per-work-item layout
        (used by the hybrid scheduler so both devices fill the same
        scratch copies; the full-CPU construct below keeps its TBB-style
        one-copy-per-core layout instead)."""
        rt = self.rt
        trace = rt._new_trace(budget)
        interp = rt._make_engine(
            device="cpu",
            trace=trace,
            num_cores=rt.system.cpu.cores,
            allocator=rt.allocator,
        )
        kernel = kinfo.kernel
        for index in span:
            interp.global_id = index
            try:
                interp.call_function(kernel, [copies[index], index])
            except BaseException as exc:
                if not hasattr(exc, "trap_device"):
                    exc.trap_device = self.name
                    exc.trap_kernel = kernel.name
                    exc.trap_global_id = index
                raise
        interp.release_private_memory()
        if rt.keep_traces:
            rt.trace_log.append(trace)
        report = time_cpu_execution(
            rt.system.cpu, [trace], llc=timing_cache, counters=self._counters()
        )
        return LaunchResult(report=report, traces=[trace])

    # -- construct-level entry points -------------------------------------

    def run_for(self, kinfo, n: int, body):
        rt = self.rt
        kernel_name = kinfo.kernel.name
        with rt._span(
            f"construct:{kernel_name}", "construct", device="cpu", n=n
        ) as cspan:
            with rt._span("launch", "phase") as launch_span:
                result = self.launch(kinfo, range(n), address_of(body))
        report = result.report
        rt.total_cpu_report += report
        if rt.obs is not None:
            rt._record_construct(
                cspan,
                kernel_name,
                "for",
                "cpu",
                n,
                seconds=report.seconds,
                energy_joules=report.energy_joules,
                phases={"launch": report.seconds},
                traces=result.traces,
                span_seconds=[(launch_span, report.seconds)],
                line_samples=[(kinfo.kernel, "cpu", result.traces)],
            )
        return _runtime_mod().ExecutionReport(device="cpu", n=n, report=report)

    def run_reduce(self, kinfo, n: int, body):
        # TBB-style: each worker runs iterations into (a copy of) the body
        # and joins; we model one body copy per core joined at the end.
        rt = self.rt
        kernel_name = kinfo.kernel.name
        with rt._span(
            f"construct:{kernel_name}", "construct", device="cpu", n=n
        ) as cspan:
            with rt._span("launch", "phase") as launch_span:
                struct = kinfo.body_class.struct_type
                size = struct.size()
                addr = address_of(body)
                cores = rt.system.cpu.cores
                trace = rt._new_trace()
                interp = rt._make_engine(
                    device="cpu",
                    trace=trace,
                    num_cores=cores,
                    allocator=rt.allocator,
                )
                copies = []
                payload = rt.region.read_bytes(addr, size)
                for _ in range(min(cores, max(1, n))):
                    copy_addr = rt.allocator.malloc(size, struct.align())
                    rt.region.write_bytes(copy_addr, payload)
                    copies.append(copy_addr)
                for index in range(n):
                    interp.global_id = index
                    interp.call_function(
                        kinfo.kernel, [copies[index % len(copies)], index]
                    )
                join = kinfo.join_kernel
                for copy_addr in copies:
                    if join is not None:
                        interp.call_function(join, [addr, copy_addr])
                for copy_addr in copies:
                    rt.allocator.free(copy_addr)
                interp.release_private_memory()
                if rt.keep_traces:
                    rt.trace_log.append(trace)
                report = time_cpu_execution(
                    rt.system.cpu, [trace], counters=self._counters()
                )
        rt.total_cpu_report += report
        if rt.obs is not None:
            rt._record_construct(
                cspan,
                kernel_name,
                "reduce",
                "cpu",
                n,
                seconds=report.seconds,
                energy_joules=report.energy_joules,
                phases={"launch": report.seconds},
                traces=[trace],
                span_seconds=[(launch_span, report.seconds)],
                line_samples=[(kinfo.kernel, "cpu", [trace])],
            )
        return _runtime_mod().ExecutionReport(device="cpu", n=n, report=report)
