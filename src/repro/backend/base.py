"""The device-backend protocol.

A backend runs *chunks* of a parallel construct on one device and prices
them with that device's timing model.  Two levels of entry points:

* **Construct level** — ``run_for`` / ``run_reduce`` execute a whole
  construct exactly as the pre-refactor monolithic runtime did (same span
  structure, same observer records, bit-identical timing).  The ``cpu``
  and ``gpu`` scheduler policies delegate straight to these.

* **Chunk level** — ``prepare`` / ``launch`` / ``reduce`` run a
  contiguous index range and return the raw :class:`LaunchResult`
  (traces + device report) *without* touching the observer.  The
  scheduler composes these into hybrid constructs and does the
  construct-level bookkeeping itself.

Backends are stateless apart from the owning runtime: every engine,
trace, allocator and counter comes from the :class:`ConcordRuntime`
passed at construction, so two backends over one runtime share the code
cache, private pool and SVM region exactly as the monolith did.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from ..gpu.timing import DeviceReport


@dataclass
class LaunchResult:
    """What one chunk of work cost: the device report plus the traces it
    was priced from (the scheduler feeds them to counter harvesting and
    source-line attribution)."""

    report: DeviceReport
    traces: list = field(default_factory=list)

    @property
    def kept_events(self) -> int:
        """Mem events retained across this chunk's traces (the scheduler
        charges them against the construct's global cap budget)."""
        return sum(len(trace.mem_events) for trace in self.traces)


class Backend(abc.ABC):
    """One device's execution + timing strategy (see module docstring)."""

    #: device name; doubles as the scheduler registry key
    name: str = ""
    #: what this backend can run ("for", "reduce") and provide ("jit")
    capabilities: frozenset = frozenset()

    def __init__(self, rt):
        self.rt = rt

    # -- chunk-level primitives -------------------------------------------

    @abc.abstractmethod
    def prepare(self, kinfo) -> float:
        """One-time per-kernel setup (e.g. the GPU's vendor JIT); returns
        the simulated seconds charged to *this* call (0.0 when cached)."""

    def jit_preview(self, kinfo) -> float:
        """The cost :meth:`prepare` would charge for this kernel *without*
        performing the setup — the task graph's compile-ahead estimate.
        Backends with no one-time setup preview as free."""
        return 0.0

    @abc.abstractmethod
    def launch(
        self,
        kinfo,
        span: range,
        body_addr: int,
        timing_cache=None,
        budget: Optional[int] = None,
    ) -> LaunchResult:
        """Execute ``operator()`` lanes for every index in ``span`` against
        the body at ``body_addr`` and price them.  ``timing_cache`` threads
        one cache model through consecutive chunks of a construct (so a
        split construct is priced like one launch); ``budget`` caps the
        mem events this chunk may retain."""

    @abc.abstractmethod
    def reduce(
        self,
        kinfo,
        span: range,
        copies: list,
        timing_cache=None,
        budget: Optional[int] = None,
    ) -> LaunchResult:
        """Execute reduction lanes for every index in ``span``, each into
        its private body copy ``copies[index]`` (section 3.3 layout: one
        copy per work-item, joined afterwards by the caller)."""

    # -- construct-level entry points -------------------------------------

    @abc.abstractmethod
    def run_for(self, kinfo, n: int, body):
        """A whole ``parallel_for_hetero`` construct, observer-recorded."""

    @abc.abstractmethod
    def run_reduce(self, kinfo, n: int, body):
        """A whole ``parallel_reduce_hetero`` construct, observer-recorded."""
