"""Calibration report: simulated ratios vs the paper's published numbers.

The device models are analytic with tunable constants; this module prints
everything needed to check (and tune) the *shape* targets from the paper's
evaluation, which EXPERIMENTS.md records:

Ultrabook (Figures 7/8):
  speedups 1.11x-9.88x, geomean ~2.5x, Raytracer best at 9.88x;
  energy savings 0.93x-6.04x, geomean ~2.04x, FaceDetect the only < 1x.
Desktop (Figures 9/10):
  speedup geomean ~1.0x, BarnesHut ~0.53x (slower on GPU);
  energy geomean ~1.69x with BFS 2.94x, Raytracer 3.52x, SkipList 2.27x,
  BTree 2.43x, FaceDetect < 1x, BarnesHut ~1.48x despite the slowdown.
Optimizations:
  PTROPT ~1.06x (Ultrabook) / ~1.09x (desktop) geomean over GPU, biggest
  on Raytracer / FaceDetect / SkipList; ALL ~1.07x / ~1.12x.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.system import System, desktop, ultrabook
from .formatting import render_table
from .runner import WORKLOAD_ORDER, geomean, measure_all

#: Paper values read from the text (exact) and figures (approximate).
PAPER_TARGETS = {
    "Ultrabook": {
        "speedup": {
            "Raytracer": 9.88,
            "_geomean": 2.5,
            "_min": 1.11,
        },
        "energy": {
            "Raytracer": 6.04,
            "FaceDetect": 0.93,
            "_geomean": 2.04,
        },
    },
    "Desktop": {
        "speedup": {
            "BarnesHut": 0.53,
            "_geomean": 1.01,
        },
        "energy": {
            "BFS": 2.94,
            "Raytracer": 3.52,
            "SkipList": 2.27,
            "BTree": 2.43,
            "BarnesHut": 1.48,
            "_geomean": 1.69,
        },
    },
}


@dataclass
class CalibrationRow:
    workload: str
    speedup: float
    energy: float
    ptropt_gain: float
    all_gain: float
    cpu_power: float
    gpu_power: float


def calibration_rows(system: System, scale: float = 0.5) -> list[CalibrationRow]:
    measurements = measure_all(system, scale=scale, validate=False)
    rows = []
    for name in WORKLOAD_ORDER:
        m = measurements[name]
        rows.append(
            CalibrationRow(
                workload=name,
                speedup=m.speedup("GPU+ALL"),
                energy=m.energy_savings("GPU+ALL"),
                ptropt_gain=m.gpu_seconds["GPU"] / m.gpu_seconds["GPU+PTROPT"],
                all_gain=m.gpu_seconds["GPU"] / m.gpu_seconds["GPU+ALL"],
                cpu_power=m.cpu_energy / m.cpu_seconds,
                gpu_power=m.gpu_energy["GPU+ALL"] / m.gpu_seconds["GPU+ALL"],
            )
        )
    return rows


def format_calibration(scale: float = 0.5) -> str:
    parts = []
    for system in (ultrabook(), desktop()):
        rows = calibration_rows(system, scale)
        table = render_table(
            ["Benchmark", "Speedup", "Energy", "PTROPT x", "ALL x",
             "CPU W", "GPU W"],
            [
                [
                    r.workload,
                    f"{r.speedup:.2f}",
                    f"{r.energy:.2f}",
                    f"{r.ptropt_gain:.3f}",
                    f"{r.all_gain:.3f}",
                    f"{r.cpu_power:.1f}",
                    f"{r.gpu_power:.1f}",
                ]
                for r in rows
            ],
            title=f"{system.name}: simulated ratios (scale={scale})",
        )
        gs = geomean(r.speedup for r in rows)
        ge = geomean(r.energy for r in rows)
        gp = geomean(r.ptropt_gain for r in rows)
        ga = geomean(r.all_gain for r in rows)
        targets = PAPER_TARGETS[system.name]
        parts.append(table)
        parts.append(
            f"geomeans: speedup={gs:.2f} (paper ~{targets['speedup']['_geomean']}), "
            f"energy={ge:.2f} (paper ~{targets['energy']['_geomean']}), "
            f"PTROPT={gp:.3f}, ALL={ga:.3f}"
        )
        parts.append("")
    return "\n".join(parts)


if __name__ == "__main__":
    import sys

    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(format_calibration(scale))
