"""Plain-text table/series rendering for the evaluation outputs."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def line(cells):
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def render_series(title: str, labels: list[str], series: dict[str, list[float]],
                  value_format: str = "{:.2f}") -> str:
    """Figure-style output: one row per label, one column per series."""
    headers = ["Benchmark", *series.keys()]
    rows = []
    for index, label in enumerate(labels):
        rows.append(
            [label, *(value_format.format(values[index]) for values in series.values())]
        )
    return render_table(headers, rows, title=title)
