"""Measurement core for the evaluation (paper section 5).

For one workload on one system we measure:

* multicore CPU execution (the paper's baseline) — same compiled program,
  ``on_cpu=True``;
* GPU execution under the four configurations of section 5: GPU,
  GPU+PTROPT, GPU+L3OPT, GPU+ALL;
* hybrid CPU+GPU execution — the fully optimized program dispatched
  through the partitioning scheduler (``policy="hybrid"``, see
  :mod:`repro.sched`), reported as the ``HYBRID`` column.

Results are cached per (workload, system, scale) within the process so the
figure/benchmark runners can share them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..passes import OptConfig
from ..runtime.system import System, desktop, ultrabook
from ..workloads import all_workloads
from ..workloads.base import Workload

GPU_CONFIG_LABELS = ("GPU", "GPU+PTROPT", "GPU+L3OPT", "GPU+ALL")

#: Label of the hybrid-scheduler column (kept out of GPU_CONFIG_LABELS —
#: it is a placement policy, not a compiler configuration).
HYBRID_LABEL = "HYBRID"

#: Workloads in the paper's presentation order.
WORKLOAD_ORDER = (
    "BarnesHut",
    "BFS",
    "BTree",
    "ClothPhysics",
    "ConnectedComponent",
    "FaceDetect",
    "Raytracer",
    "SkipList",
    "SSSP",
)


@dataclass
class Measurement:
    workload: str
    system: str
    cpu_seconds: float
    cpu_energy: float
    gpu_seconds: dict[str, float] = field(default_factory=dict)
    gpu_energy: dict[str, float] = field(default_factory=dict)
    hybrid_seconds: float = 0.0
    hybrid_energy: float = 0.0

    def speedup(self, label: str = "GPU+ALL") -> float:
        if label == HYBRID_LABEL:
            return self.cpu_seconds / self.hybrid_seconds
        return self.cpu_seconds / self.gpu_seconds[label]

    def energy_savings(self, label: str = "GPU+ALL") -> float:
        if label == HYBRID_LABEL:
            return self.cpu_energy / self.hybrid_energy
        return self.cpu_energy / self.gpu_energy[label]


_CACHE: dict[tuple, Measurement] = {}

#: observer attached to every measurement when no explicit one is passed
#: (``python -m repro.eval --trace`` routes through this)
_DEFAULT_OBSERVER = None


def set_default_observer(observer) -> None:
    """Attach ``observer`` (or ``None`` to detach) to all subsequent
    measurements that do not pass their own.  Observed measurements
    bypass the cache, so the observer sees complete executions."""
    global _DEFAULT_OBSERVER
    _DEFAULT_OBSERVER = observer


def measure_workload(
    workload_cls: type[Workload],
    system: System,
    scale: float = 1.0,
    validate: bool = True,
    engine: str = "compiled",
    observer=None,
) -> Measurement:
    """Measure one workload.  ``observer`` (a ``repro.obs.Observer``)
    opts into span/counter/profile collection for every run the
    measurement performs; observed calls bypass the in-process cache so
    the observer always sees a complete execution."""
    if observer is None:
        observer = _DEFAULT_OBSERVER
    key = (workload_cls.__name__, system.name, round(scale, 4), engine)
    cached = _CACHE.get(key)
    if cached is not None and observer is None:
        return cached

    workload = workload_cls()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        cpu_outcome = workload.execute(
            OptConfig.gpu_all(),
            system,
            on_cpu=True,
            scale=scale,
            validate=validate,
            engine=engine,
            observer=observer,
        )
        measurement = Measurement(
            workload=workload_cls.name,
            system=system.name,
            cpu_seconds=cpu_outcome.seconds,
            cpu_energy=cpu_outcome.energy_joules,
        )
        for config in OptConfig.all_configs():
            outcome = workload.execute(
                config,
                system,
                on_cpu=False,
                scale=scale,
                validate=validate,
                engine=engine,
                observer=observer,
            )
            measurement.gpu_seconds[config.label] = outcome.seconds
            measurement.gpu_energy[config.label] = outcome.energy_joules
        hybrid_outcome = workload.execute(
            OptConfig.gpu_all(),
            system,
            scale=scale,
            validate=validate,
            engine=engine,
            observer=observer,
            policy="hybrid",
        )
        measurement.hybrid_seconds = hybrid_outcome.seconds
        measurement.hybrid_energy = hybrid_outcome.energy_joules
    _CACHE[key] = measurement
    return measurement


def measure_all(
    system: System, scale: float = 1.0, validate: bool = True, engine: str = "compiled"
) -> dict[str, Measurement]:
    workloads = all_workloads()
    result = {}
    for name in WORKLOAD_ORDER:
        result[name] = measure_workload(workloads[name], system, scale, validate, engine)
    return result


def geomean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def clear_cache() -> None:
    _CACHE.clear()
