"""CLI for the evaluation harness.

Usage::

    python -m repro.eval table1
    python -m repro.eval fig6
    python -m repro.eval fig7 [--scale 0.5]
    python -m repro.eval fig8 | fig9 | fig10
    python -m repro.eval svm
    python -m repro.eval overlap
    python -m repro.eval all
    python -m repro.eval fig7 --trace eval-trace.json

``--trace FILE`` attaches an observer to every measurement the chosen
experiment performs and writes a Chrome ``trace_event`` file at the end
(load it in about://tracing or Perfetto).
"""

from __future__ import annotations

import argparse
import sys

from . import (
    figure7,
    figure8,
    figure9,
    figure10,
    format_figure6,
    format_svm_overhead,
    format_table1,
)

EXPERIMENTS = (
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "svm",
    "overlap",
    "report",
    "all",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.eval")
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace_event JSON file of every measurement",
    )
    args = parser.parse_args(argv)

    observer = None
    if args.trace:
        from ..obs import Observer
        from .runner import set_default_observer

        observer = Observer()
        set_default_observer(observer)

    chosen = EXPERIMENTS[:-2] if args.experiment == "all" else (args.experiment,)
    for experiment in chosen:
        if experiment == "table1":
            print(format_table1(args.scale))
        elif experiment == "fig6":
            print(format_figure6())
        elif experiment == "fig7":
            print(figure7(args.scale).render())
        elif experiment == "fig8":
            print(figure8(args.scale).render())
        elif experiment == "fig9":
            print(figure9(args.scale).render())
        elif experiment == "fig10":
            print(figure10(args.scale).render())
        elif experiment == "svm":
            print(format_svm_overhead())
        elif experiment == "overlap":
            from .overlap import measure_overlap

            print(measure_overlap(scale=args.scale).render())
        elif experiment == "report":
            from .report import generate_report

            print(generate_report(args.scale))
        print()
    if observer is not None:
        from ..obs import write_trace
        from .runner import set_default_observer

        set_default_observer(None)
        write_trace(
            observer,
            args.trace,
            meta={"command": "eval", "experiment": args.experiment, "scale": args.scale},
        )
        print(f"trace: {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
