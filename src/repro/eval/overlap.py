"""Inter-construct overlap study for the task-graph runtime.

Two pipeline scenarios where the synchronous construct-at-a-time model
leaves a device idle and the task graph (:mod:`repro.runtime.graph`)
does not:

* **BFS level pipeline** — ``Q`` simultaneous BFS queries over one
  shared road network, each with private ``dist``/``changed`` arrays.
  Constructs of the *same* query chain through RAW edges on its
  ``dist`` array (level ``k+1`` reads what level ``k`` wrote);
  constructs of *different* queries are independent, so each wave of
  ``Q`` submissions spreads across the CPU and GPU virtual clocks.
* **Barnes-Hut batched scenes** — ``B`` independent n-body scenes, each
  with its own host-built octree and force arrays.  The force constructs
  share nothing, so the whole batch overlaps.

Both scenarios execute the sync baseline and the graph run and assert
bit-identical result arrays before reporting the virtual-wall-clock
speedup — overlap must never change the answer.  ``python -m repro.eval
overlap`` renders the figure; :func:`overlap_rows` feeds the benchmark
ledger's ``--graph`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.types import F32, I32
from ..runtime.system import System, ultrabook

#: Simultaneous BFS queries in the level pipeline.  Deliberately larger
#: than the scheduler's untrained CPU-slowdown prior (8x): the first wave
#: must queue the GPU deep enough that earliest-completion-time placement
#: tries the CPU at least once and calibrates its real throughput.
BFS_QUERIES = 10
#: Independent Barnes-Hut scenes in the batch (same reasoning).
BH_SCENES = 10

SCENARIO_ORDER = ("BFS-pipeline", "BarnesHut-batch")


@dataclass
class OverlapPoint:
    """One scenario's sync-vs-graph comparison (virtual seconds)."""

    scenario: str
    constructs: int
    sync_seconds: float
    graph_seconds: float
    jit_ahead_seconds: float
    identical: bool
    device_busy: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.graph_seconds <= 0.0:
            return 1.0
        return self.sync_seconds / self.graph_seconds

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "constructs": self.constructs,
            "sync_seconds": self.sync_seconds,
            "graph_seconds": self.graph_seconds,
            "jit_ahead_seconds": self.jit_ahead_seconds,
            "speedup": self.speedup,
            "identical": self.identical,
            "device_busy": dict(self.device_busy),
        }


@dataclass
class OverlapFigure:
    title: str
    system: str
    points: list

    def render(self) -> str:
        lines = [self.title, f"system: {self.system}"]
        header = (
            f"{'scenario':<18} {'constructs':>10} {'sync (s)':>12} "
            f"{'graph (s)':>12} {'speedup':>8}  identical"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for point in self.points:
            lines.append(
                f"{point.scenario:<18} {point.constructs:>10} "
                f"{point.sync_seconds:>12.3e} {point.graph_seconds:>12.3e} "
                f"{point.speedup:>7.2f}x  {'yes' if point.identical else 'NO'}"
            )
        return "\n".join(lines)


# -- BFS level pipeline -------------------------------------------------------


def _bfs_queries(rt, workload, scale: float):
    """One shared graph, ``BFS_QUERIES`` private query states."""
    from ..workloads.bfs import INFINITY
    from ..workloads.graphs import graph_to_svm

    graph = workload.make_graph(scale)
    svm_graph = graph_to_svm(rt, graph)
    queries = []
    for q in range(BFS_QUERIES):
        source = (q * graph.num_nodes) // BFS_QUERIES
        dist = rt.new_array(I32, graph.num_nodes)
        dist.fill_from([INFINITY] * graph.num_nodes)
        dist[source] = 0
        changed = rt.new_array(I32, 1)
        body = rt.new("BfsBody")
        body.row_starts = svm_graph.row_starts
        body.columns = svm_graph.columns
        body.dist = dist
        body.changed = changed
        body.level = 0
        body.num_nodes = graph.num_nodes
        queries.append(
            {"dist": dist, "changed": changed, "body": body, "level": 0}
        )
    return svm_graph, queries


def _run_bfs_pipeline(rt, svm_graph, queries, graph_mode: bool):
    """Level-synchronized sweep over all queries.  Each wave submits one
    level per still-active query, then forces the wave to read the
    per-query ``changed`` flags (a host sync point per query per level)."""
    num_nodes = svm_graph.graph.num_nodes
    reports = []
    active = list(queries)
    rounds = 0
    while active:
        wave = []
        for query in active:
            query["changed"][0] = 0
            query["body"].level = query["level"]
            if graph_mode:
                wave.append(
                    rt.submit(
                        num_nodes,
                        query["body"],
                        reads=[
                            svm_graph.row_starts,
                            svm_graph.columns,
                            query["dist"],
                        ],
                        writes=[query["dist"], query["changed"]],
                    )
                )
            else:
                reports.append(rt.parallel_for_hetero(num_nodes, query["body"]))
        if graph_mode:
            reports.extend(future.result() for future in wave)
        still = []
        for query in active:
            if query["changed"][0]:
                query["level"] += 1
                still.append(query)
        active = still
        rounds += 1
        if rounds > num_nodes:
            raise RuntimeError("BFS pipeline failed to converge")
    return reports


def measure_bfs_pipeline(
    system: System = None, scale: float = 1.0
) -> OverlapPoint:
    from ..workloads.bfs import BfsWorkload

    system = system or ultrabook()
    workload = BfsWorkload()

    sync_rt = BfsWorkload.make_runtime(system=system)
    sync_graph, sync_queries = _bfs_queries(sync_rt, workload, scale)
    sync_reports = _run_bfs_pipeline(sync_rt, sync_graph, sync_queries, False)

    graph_rt = BfsWorkload.make_runtime(system=system)
    graph_rt.graph_placement = "ect"
    g_graph, g_queries = _bfs_queries(graph_rt, workload, scale)
    _run_bfs_pipeline(graph_rt, g_graph, g_queries, True)
    stats = graph_rt.wait()

    identical = all(
        sq["dist"].to_list() == gq["dist"].to_list()
        for sq, gq in zip(sync_queries, g_queries)
    )
    return OverlapPoint(
        scenario="BFS-pipeline",
        constructs=len(sync_reports),
        sync_seconds=sum(r.seconds for r in sync_reports),
        graph_seconds=stats.wall_seconds,
        jit_ahead_seconds=stats.jit_ahead_seconds,
        identical=identical,
        device_busy=stats.device_busy,
    )


# -- Barnes-Hut batched scenes ------------------------------------------------


def _tree_span(rt, root_view) -> tuple:
    """The byte range covered by one scene's rope-linked octree: walk
    every ``more``/``next`` pointer from the root (nodes are emitted
    back-to-back, so min/max addresses bound the scene)."""
    node_size = root_view.struct_type.size()
    lo = hi = root_view.addr
    stack = [root_view.addr]
    seen = set()
    while stack:
        addr = stack.pop()
        if not addr or addr in seen:
            continue
        seen.add(addr)
        lo = min(lo, addr)
        hi = max(hi, addr + node_size)
        node = rt.view("OctNode", addr)
        stack.append(node.more)
        stack.append(node.next)
    return (lo, hi - lo)


def _bh_scenes(rt, workload, scale: float):
    """``BH_SCENES`` independent scenes, each a host-built octree plus
    private position/acceleration arrays."""
    import random

    from ..workloads.barneshut import THETA, _build_octree, _emit_ropes

    n = max(16, workload.num_bodies(scale) // BH_SCENES)
    scenes = []
    for s in range(BH_SCENES):
        rng = random.Random(1000 + s)
        positions = [
            (
                min(0.999, max(0.001, rng.gauss(0.3 + 0.1 * (s % 4), 0.1))),
                min(0.999, max(0.001, rng.gauss(0.5, 0.15))),
                min(0.999, max(0.001, rng.gauss(0.4, 0.12))),
            )
            for _ in range(n)
        ]
        masses = [0.5 + rng.random() for _ in range(n)]
        root = _emit_ropes(rt, _build_octree(positions, masses))
        arrays = {name: rt.new_array(F32, n) for name in "px py pz ax ay az".split()}
        arrays["px"].fill_from(p[0] for p in positions)
        arrays["py"].fill_from(p[1] for p in positions)
        arrays["pz"].fill_from(p[2] for p in positions)
        body = rt.new("ForceBody")
        body.root = root
        for name, arr in arrays.items():
            setattr(body, name, arr)
        body.theta2 = THETA * THETA
        scenes.append(
            {"n": n, "body": body, "arrays": arrays, "tree": _tree_span(rt, root)}
        )
    return scenes


def _run_bh_batch(rt, scenes, graph_mode: bool):
    reports = []
    futures = []
    for scene in scenes:
        if graph_mode:
            arrays = scene["arrays"]
            futures.append(
                rt.submit(
                    scene["n"],
                    scene["body"],
                    reads=[
                        scene["tree"],
                        arrays["px"],
                        arrays["py"],
                        arrays["pz"],
                    ],
                    writes=[arrays["ax"], arrays["ay"], arrays["az"]],
                )
            )
        else:
            reports.append(rt.parallel_for_hetero(scene["n"], scene["body"]))
    if graph_mode:
        reports.extend(future.result() for future in futures)
    return reports


def measure_bh_batch(
    system: System = None, scale: float = 1.0
) -> OverlapPoint:
    from ..workloads.barneshut import BarnesHutWorkload

    system = system or ultrabook()
    workload = BarnesHutWorkload()

    sync_rt = BarnesHutWorkload.make_runtime(system=system)
    sync_scenes = _bh_scenes(sync_rt, workload, scale)
    sync_reports = _run_bh_batch(sync_rt, sync_scenes, False)

    graph_rt = BarnesHutWorkload.make_runtime(system=system)
    graph_rt.graph_placement = "ect"
    g_scenes = _bh_scenes(graph_rt, workload, scale)
    _run_bh_batch(graph_rt, g_scenes, True)
    stats = graph_rt.wait()

    identical = all(
        all(
            ss["arrays"][name].to_list() == gs["arrays"][name].to_list()
            for name in ("ax", "ay", "az")
        )
        for ss, gs in zip(sync_scenes, g_scenes)
    )
    return OverlapPoint(
        scenario="BarnesHut-batch",
        constructs=len(sync_reports),
        sync_seconds=sum(r.seconds for r in sync_reports),
        graph_seconds=stats.wall_seconds,
        jit_ahead_seconds=stats.jit_ahead_seconds,
        identical=identical,
        device_busy=stats.device_busy,
    )


def measure_overlap(system: System = None, scale: float = 1.0) -> OverlapFigure:
    """Both pipeline scenarios, sync vs graph."""
    system = system or ultrabook()
    points = [
        measure_bfs_pipeline(system, scale),
        measure_bh_batch(system, scale),
    ]
    return OverlapFigure(
        title="Overlap: task-graph runtime vs synchronous submission",
        system=system.name,
        points=points,
    )


def overlap_rows(system: System = None, scale: float = 1.0) -> list:
    """Ledger rows for ``repro bench --graph`` (one per scenario)."""
    figure = measure_overlap(system, scale)
    return [point.to_dict() for point in figure.points]
