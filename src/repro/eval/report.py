"""One-shot markdown report: every table/figure plus shape-target checks.

``python -m repro.eval report [--scale 0.5] > results.md`` regenerates the
whole evaluation and appends a pass/fail table of the paper's shape
targets, so a fresh checkout can confirm the reproduction in one command.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from .figures import FigureData, figure7, figure8, figure9, figure10
from .runner import geomean
from .svm_overhead import measure_svm_overhead
from .tables import figure6_mixes, format_figure6, format_table1


@dataclass
class ShapeCheck:
    name: str
    expected: str
    measured: str
    passed: bool


def shape_checks(
    fig7: FigureData,
    fig8: FigureData,
    fig9: FigureData,
    fig10: FigureData,
    overhead_points,
    mixes,
) -> list[ShapeCheck]:
    checks: list[ShapeCheck] = []

    def add(name, expected, measured, passed):
        checks.append(ShapeCheck(name, expected, f"{measured}", bool(passed)))

    speed7 = dict(zip(fig7.labels, fig7.series["GPU+ALL"]))
    energy8 = dict(zip(fig8.labels, fig8.series["GPU+ALL"]))
    speed9 = dict(zip(fig9.labels, fig9.series["GPU+ALL"]))
    energy10 = dict(zip(fig10.labels, fig10.series["GPU+ALL"]))

    add(
        "Ultrabook: every workload speeds up",
        ">= 1.0x (paper min 1.11x)",
        f"min {min(speed7.values()):.2f}x",
        min(speed7.values()) >= 1.0,
    )
    add(
        "Ultrabook: Raytracer is the best performer",
        "top of Figure 7 (paper 9.88x)",
        f"{speed7['Raytracer']:.2f}x",
        max(speed7, key=speed7.get) == "Raytracer",
    )
    add(
        "Ultrabook energy geomean near paper's 2.04x",
        "1.4x-3.0x",
        f"{geomean(energy8.values()):.2f}x",
        1.4 <= geomean(energy8.values()) <= 3.0,
    )
    add(
        "Ultrabook: FaceDetect among worst 3 for energy",
        "paper: the only workload < 1x",
        f"rank {sorted(energy8, key=energy8.get).index('FaceDetect') + 1}/9",
        "FaceDetect" in sorted(energy8, key=energy8.get)[:3],
    )
    add(
        "Desktop: BarnesHut slower on GPU",
        "< 1.0x (paper 0.53x)",
        f"{speed9['BarnesHut']:.2f}x",
        speed9["BarnesHut"] < 1.0,
    )
    add(
        "Desktop speedup geomean near parity",
        "0.8x-1.8x (paper ~1.01x)",
        f"{geomean(speed9.values()):.2f}x",
        0.8 <= geomean(speed9.values()) <= 1.8,
    )
    add(
        "Desktop energy geomean near paper's 1.69x",
        "1.2x-2.6x",
        f"{geomean(energy10.values()):.2f}x",
        1.2 <= geomean(energy10.values()) <= 2.6,
    )
    add(
        "Desktop: BarnesHut energy ratio far above its speed ratio",
        "paper: 0.53x speed but 1.48x energy",
        f"{energy10['BarnesHut']:.2f}x vs {speed9['BarnesHut']:.2f}x",
        energy10["BarnesHut"] > speed9["BarnesHut"] * 1.3,
    )
    add(
        "PTROPT helps on both systems",
        "geomean > 1 (paper 1.06x/1.09x)",
        f"{fig7.averages()['GPU+PTROPT'] / fig7.averages()['GPU']:.3f}x / "
        f"{fig9.averages()['GPU+PTROPT'] / fig9.averages()['GPU']:.3f}x",
        fig7.averages()["GPU+PTROPT"] > fig7.averages()["GPU"]
        and fig9.averages()["GPU+PTROPT"] > fig9.averages()["GPU"],
    )
    add(
        "Raytracer among the least irregular (Fig 6)",
        "bottom 3 of control+memory ranking",
        f"{mixes['Raytracer'].irregularity_pct:.1f}%",
        "Raytracer"
        in sorted(mixes, key=lambda n: mixes[n].irregularity_pct)[:3],
    )
    worst_overhead = max(p.overhead_pct for p in overhead_points)
    add(
        "SVM overhead small and positive (paper <= ~6%)",
        "0% < overhead < 20%",
        f"max {worst_overhead:+.1f}%",
        0.0 < worst_overhead < 20.0,
    )
    return checks


def generate_report(scale: float = 1.0) -> str:
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write(f"Workload scale: {scale}\n\n")

    out.write("```\n" + format_table1(scale) + "\n```\n\n")
    mixes = figure6_mixes()
    out.write("```\n" + format_figure6() + "\n```\n\n")

    fig7 = figure7(scale)
    fig8 = figure8(scale)
    fig9 = figure9(scale)
    fig10 = figure10(scale)
    for fig in (fig7, fig8, fig9, fig10):
        out.write("```\n" + fig.render() + "\n```\n\n")

    overhead = measure_svm_overhead()
    from .svm_overhead import format_svm_overhead

    out.write("```\n" + format_svm_overhead(overhead) + "\n```\n\n")

    out.write("## Shape targets (paper vs this run)\n\n")
    out.write("| check | expected | measured | status |\n")
    out.write("|---|---|---|---|\n")
    checks = shape_checks(fig7, fig8, fig9, fig10, overhead, mixes)
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        out.write(
            f"| {check.name} | {check.expected} | {check.measured} | {status} |\n"
        )
    passed = sum(1 for c in checks if c.passed)
    out.write(f"\n{passed}/{len(checks)} shape targets hold.\n")
    return out.getvalue()
