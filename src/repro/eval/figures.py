"""Figures 7-10: speedup and energy savings relative to multicore CPU
execution on the Ultrabook and desktop systems, under the four GPU
configurations plus the hybrid CPU+GPU scheduler column."""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.system import System, desktop, ultrabook
from .formatting import render_series
from .runner import (
    GPU_CONFIG_LABELS,
    HYBRID_LABEL,
    WORKLOAD_ORDER,
    geomean,
    measure_all,
)


@dataclass
class FigureData:
    title: str
    system: str
    metric: str  # "speedup" | "energy"
    labels: list[str]
    series: dict[str, list[float]]  # config label -> per-workload values

    def averages(self) -> dict[str, float]:
        return {label: geomean(values) for label, values in self.series.items()}

    def value(self, workload: str, config: str = "GPU+ALL") -> float:
        return self.series[config][self.labels.index(workload)]

    def render(self) -> str:
        body = render_series(self.title, self.labels, self.series)
        averages = self.averages()
        avg_line = "geomean: " + "  ".join(
            f"{label}={value:.2f}" for label, value in averages.items()
        )
        return body + "\n" + avg_line


def _figure(system: System, metric: str, title: str, scale: float) -> FigureData:
    measurements = measure_all(system, scale=scale)
    labels = (*GPU_CONFIG_LABELS, HYBRID_LABEL)
    series: dict[str, list[float]] = {label: [] for label in labels}
    for name in WORKLOAD_ORDER:
        m = measurements[name]
        for label in labels:
            if metric == "speedup":
                series[label].append(m.speedup(label))
            else:
                series[label].append(m.energy_savings(label))
    return FigureData(
        title=title,
        system=system.name,
        metric=metric,
        labels=list(WORKLOAD_ORDER),
        series=series,
    )


def figure7(scale: float = 1.0) -> FigureData:
    """Ultrabook: runtime performance relative to multicore CPU."""
    return _figure(
        ultrabook(), "speedup",
        "Figure 7: speedup vs multicore CPU (Ultrabook)", scale,
    )


def figure8(scale: float = 1.0) -> FigureData:
    """Ultrabook: energy efficiency relative to multicore CPU."""
    return _figure(
        ultrabook(), "energy",
        "Figure 8: energy savings vs multicore CPU (Ultrabook)", scale,
    )


def figure9(scale: float = 1.0) -> FigureData:
    """Desktop: runtime performance relative to multicore CPU."""
    return _figure(
        desktop(), "speedup",
        "Figure 9: speedup vs multicore CPU (desktop)", scale,
    )


def figure10(scale: float = 1.0) -> FigureData:
    """Desktop: energy efficiency relative to multicore CPU."""
    return _figure(
        desktop(), "energy",
        "Figure 10: energy savings vs multicore CPU (desktop)", scale,
    )
