"""Section 5.4: overhead of the software SVM implementation.

The paper ports the pointer-intensive Raytracer to plain OpenCL 1.2 by
hand: the scene graph is flattened into linear arrays indexed by integer
offsets (no shared pointers, no translation).  Comparing the Concord
version against that comparator isolates what software SVM costs; the
paper found negligible overhead for small images and only ~6% at the
largest size.

We run the same experiment across image sizes with our Raytracer and the
``RaytracerFlat`` comparator on the Ultrabook GPU.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..passes import OptConfig
from ..runtime.system import System, ultrabook
from ..workloads.raytracer import FlatRaytracerWorkload, RaytracerWorkload
from .formatting import render_table


@dataclass
class OverheadPoint:
    width: int
    height: int
    concord_seconds: float
    opencl_seconds: float

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.concord_seconds / self.opencl_seconds - 1.0)


def measure_svm_overhead(
    scales=(0.4, 0.7, 1.0, 1.5),
    system: System | None = None,
    config: OptConfig | None = None,
) -> list[OverheadPoint]:
    system = system or ultrabook()
    config = config or OptConfig.gpu_all()
    points = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for scale in scales:
            concord = RaytracerWorkload()
            flat = FlatRaytracerWorkload()
            width, height = concord.resolution(scale)
            concord_outcome = concord.execute(
                config, system, scale=scale, validate=False
            )
            flat_outcome = flat.execute(config, system, scale=scale, validate=False)
            points.append(
                OverheadPoint(
                    width=width,
                    height=height,
                    concord_seconds=concord_outcome.seconds,
                    opencl_seconds=flat_outcome.seconds,
                )
            )
    return points


def format_svm_overhead(points: list[OverheadPoint] | None = None) -> str:
    points = points or measure_svm_overhead()
    rows = [
        [
            f"{p.width}x{p.height}",
            f"{p.concord_seconds:.3e}",
            f"{p.opencl_seconds:.3e}",
            f"{p.overhead_pct:+.1f}%",
        ]
        for p in points
    ]
    return render_table(
        ["Image", "Concord (SVM)", "Flattened OpenCL", "SVM overhead"],
        rows,
        title="Section 5.4: overhead of software SVM (Raytracer)",
    )
