"""Experiment harness: regenerates every table and figure of the paper's
evaluation (Table 1, Figure 6, Figures 7-10, the section 5.4 SVM-overhead
study)."""

from .figures import FigureData, figure7, figure8, figure9, figure10
from .overlap import (
    OverlapFigure,
    OverlapPoint,
    measure_bfs_pipeline,
    measure_bh_batch,
    measure_overlap,
    overlap_rows,
)
from .runner import (
    GPU_CONFIG_LABELS,
    Measurement,
    WORKLOAD_ORDER,
    clear_cache,
    geomean,
    measure_all,
    measure_workload,
)
from .svm_overhead import OverheadPoint, format_svm_overhead, measure_svm_overhead
from .tables import figure6_mixes, format_figure6, format_table1, table1_rows

__all__ = [
    "FigureData",
    "GPU_CONFIG_LABELS",
    "Measurement",
    "OverheadPoint",
    "OverlapFigure",
    "OverlapPoint",
    "WORKLOAD_ORDER",
    "clear_cache",
    "figure10",
    "figure6_mixes",
    "figure7",
    "figure8",
    "figure9",
    "format_figure6",
    "format_svm_overhead",
    "format_table1",
    "geomean",
    "measure_all",
    "measure_bfs_pipeline",
    "measure_bh_batch",
    "measure_overlap",
    "measure_svm_overhead",
    "measure_workload",
    "overlap_rows",
    "table1_rows",
]
