"""Table 1 and Figure 6 regeneration (workload characteristics and static
IR operation mix)."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import IrMix, kernel_mix
from ..passes import OptConfig
from ..workloads import all_workloads
from .formatting import render_table
from .runner import WORKLOAD_ORDER


@dataclass
class Table1Row:
    benchmark: str
    origin: str
    input_size: str
    loc: int
    device_loc: int
    data_structure: str
    parallel_construct: str


def table1_rows(scale: float = 1.0) -> list[Table1Row]:
    workloads = all_workloads()
    rows = []
    for name in WORKLOAD_ORDER:
        cls = workloads[name]
        workload = cls()
        rows.append(
            Table1Row(
                benchmark=cls.name,
                origin=cls.origin,
                input_size=_input_size(workload, scale),
                loc=cls.loc(),
                device_loc=cls.device_loc(),
                data_structure=cls.data_structure,
                parallel_construct=cls.parallel_construct.replace("_", " "),
            )
        )
    return rows


def _input_size(workload, scale: float) -> str:
    if hasattr(workload, "make_graph"):
        graph = workload.make_graph(scale)
        return f"|V|={graph.num_nodes}, |E|={graph.num_edges}"
    if hasattr(workload, "sizes"):
        keys, queries = workload.sizes(scale)
        return f"{keys} keys, {queries} queries"
    if hasattr(workload, "num_bodies"):
        return f"{workload.num_bodies(scale)} bodies"
    if hasattr(workload, "grid"):
        width, height, steps = workload.grid(scale)
        return f"{width}x{height} nodes, {steps} steps"
    if hasattr(workload, "image_size"):
        width, height = workload.image_size(scale)
        return f"{width}x{height} image, 22-stage cascade"
    if hasattr(workload, "resolution"):
        width, height = workload.resolution(scale)
        return f"{width}x{height} pixels"
    return "-"


def format_table1(scale: float = 1.0) -> str:
    rows = table1_rows(scale)
    return render_table(
        ["Benchmark", "Origin", "Input size", "LoC", "Device LoC",
         "Data structure", "Parallel construct"],
        [
            [r.benchmark, r.origin, r.input_size, str(r.loc), str(r.device_loc),
             r.data_structure, r.parallel_construct]
            for r in rows
        ],
        title="Table 1: Concord C++ workloads and their characteristics",
    )


def figure6_mixes() -> dict[str, IrMix]:
    """Percent of IR operations that are control-flow / memory related."""
    workloads = all_workloads()
    mixes = {}
    for name in WORKLOAD_ORDER:
        cls = workloads[name]
        program = cls.compile(OptConfig.gpu())
        mixes[name] = kernel_mix(program, cls().body_class)
    return mixes


def format_figure6() -> str:
    mixes = figure6_mixes()
    rows = []
    for name, mix in mixes.items():
        rows.append(
            [
                name,
                f"{mix.control_pct:5.1f}%",
                f"{mix.memory_pct:5.1f}%",
                f"{mix.remaining_pct:5.1f}%",
                f"{mix.irregularity_pct:5.1f}%",
            ]
        )
    return render_table(
        ["Benchmark", "Control", "Memory", "Remaining", "Control+Memory"],
        rows,
        title="Figure 6: percent of IR operations by category",
    )
