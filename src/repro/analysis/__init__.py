"""Static analyses over compiled programs (Figure 6 IR statistics)."""

from .irstats import IrMix, classify_instruction, ir_mix, kernel_mix

__all__ = ["IrMix", "classify_instruction", "ir_mix", "kernel_mix"]
