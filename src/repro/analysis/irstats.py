"""Static IR statistics (paper Figure 6).

The paper measures irregularity as the fraction of IR operations that are
control-flow or memory related: "more than one in four IR instructions is
either a control flow or memory instruction" for the irregular workloads.
We classify the same way over the device kernels (pre-SVM-lowering, so the
counts reflect the program, not the translation overhead):

* control: branches, compares feeding branches, returns, calls, vcalls,
  selects and phis (control-dependent value merges);
* memory: loads and stores (and atomics);
* remaining: arithmetic, conversions, address computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function

CONTROL_OPS = frozenset("br condbr ret unreachable vcall select phi".split())
MEMORY_OPS = frozenset("load store".split())


@dataclass(frozen=True)
class IrMix:
    control: int
    memory: int
    remaining: int

    @property
    def total(self) -> int:
        return self.control + self.memory + self.remaining

    @property
    def control_pct(self) -> float:
        return 100.0 * self.control / self.total if self.total else 0.0

    @property
    def memory_pct(self) -> float:
        return 100.0 * self.memory / self.total if self.total else 0.0

    @property
    def remaining_pct(self) -> float:
        return 100.0 * self.remaining / self.total if self.total else 0.0

    @property
    def irregularity_pct(self) -> float:
        """control + memory share — the paper's headline irregularity."""
        return self.control_pct + self.memory_pct


def classify_instruction(op: str, callee_name: str = "") -> str:
    if op in CONTROL_OPS:
        return "control"
    if op in MEMORY_OPS or callee_name.startswith("atomic."):
        return "memory"
    if op == "call":
        # direct function calls are control transfers; pure math/SVM
        # intrinsics are ordinary computation
        if callee_name.startswith(("math.", "svm.", "gpu.")):
            return "remaining"
        return "control"
    return "remaining"


def ir_mix(functions: list[Function]) -> IrMix:
    control = memory = remaining = 0
    for function in functions:
        for instr in function.instructions():
            callee = getattr(instr.callee, "name", "") if instr.op == "call" else ""
            kind = classify_instruction(instr.op, callee)
            if kind == "control":
                control += 1
            elif kind == "memory":
                memory += 1
            else:
                remaining += 1
    return IrMix(control=control, memory=memory, remaining=remaining)


def kernel_mix(program, class_name: str) -> IrMix:
    """Figure 6 measurement for one workload's device code."""
    kinfo = program.kernel_for(class_name)
    functions = [kinfo.kernel]
    if kinfo.join_kernel is not None:
        functions.append(kinfo.join_kernel)
    return ir_mix(functions)
